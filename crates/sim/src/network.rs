//! Switched-Ethernet network model.
//!
//! Messages pay a one-way latency plus serialization at the link bandwidth.
//! The switch is non-blocking (distinct node pairs do not contend), but each
//! node's transmit and receive NICs serialize their own traffic — the
//! contention that matters for ghost-row exchanges and redistribution
//! bursts. Rank-to-self messages cost a memcpy.

use dynmpi_obs as obs;

use crate::params::NetParams;
use crate::time::{SimDur, SimTime};

/// Per-node NIC availability state.
#[derive(Clone, Debug)]
pub struct Network {
    params: NetParams,
    /// Per-node NIC bandwidth in bytes/s; defaults to the cluster-wide
    /// `params.bandwidth`, overridden per node for heterogeneous arrivals.
    nic_bw: Vec<f64>,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Completion time of the last rank-to-self copy, per node (self
    /// deliveries are FIFO like everything else).
    self_free: Vec<SimTime>,
    /// Accumulated time frames spent queued behind a busy NIC, per node.
    tx_wait: Vec<SimDur>,
    rx_wait: Vec<SimDur>,
    /// NIC queueing paid by the most recent [`Network::deliver_at`] call
    /// (TX + RX for cross-node frames, copy queueing for self-sends), for
    /// per-message trace attribution.
    last_queued: SimDur,
    messages: u64,
    bytes: u64,
}

impl Network {
    pub fn new(nodes: usize, params: NetParams) -> Self {
        assert!(params.bandwidth > 0.0 && params.self_bandwidth > 0.0);
        Network {
            params,
            nic_bw: vec![params.bandwidth; nodes],
            tx_free: vec![SimTime::ZERO; nodes],
            rx_free: vec![SimTime::ZERO; nodes],
            self_free: vec![SimTime::ZERO; nodes],
            tx_wait: vec![SimDur::ZERO; nodes],
            rx_wait: vec![SimDur::ZERO; nodes],
            last_queued: SimDur::ZERO,
            messages: 0,
            bytes: 0,
        }
    }

    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Overrides one node's NIC bandwidth (bytes/s). Serialization on
    /// that node's TX and RX NIC then runs at this rate instead of the
    /// cluster-wide default.
    pub fn set_nic_bandwidth(&mut self, node: usize, bandwidth: f64) {
        assert!(bandwidth > 0.0, "NIC bandwidth must be positive");
        self.nic_bw[node] = bandwidth;
    }

    /// Schedules a `bytes`-byte message from `src` to `dst`, with the send
    /// call issued at `t`. Returns the virtual time at which the payload is
    /// fully available at the destination.
    ///
    /// Cut-through model: the frame serializes once on the sender's TX NIC
    /// and once on the receiver's RX NIC, overlapped except for the wire
    /// latency between the first bits. A frame that finds the RX NIC busy
    /// queues and then pays its full serialization there too — fan-in is
    /// as expensive as fan-out, which is what makes the eager-tree
    /// broadcast's root-side burst visible in simulated time.
    pub fn deliver_at(&mut self, src: usize, dst: usize, bytes: usize, t: SimTime) -> SimTime {
        self.messages += 1;
        self.bytes += bytes as u64;
        if src == dst {
            let copy = SimDur::from_secs_f64(bytes as f64 / self.params.self_bandwidth);
            let start = t.max(self.self_free[src]);
            let arrival = start + copy;
            self.self_free[src] = arrival;
            self.last_queued = start - t;
            return arrival;
        }
        let tx_ser = SimDur::from_secs_f64(bytes as f64 / self.nic_bw[src]);
        let rx_ser = SimDur::from_secs_f64(bytes as f64 / self.nic_bw[dst]);
        let tx_start = t.max(self.tx_free[src]);
        let tx_end = tx_start + tx_ser;
        self.tx_free[src] = tx_end;
        // First bit reaches the receiver one latency after it left the
        // sender; the RX NIC then serializes the frame from that point
        // (or from whenever it frees up, if later). With asymmetric NIC
        // rates the last bit cannot land before the slower sender has
        // pushed it out, hence the lower bound at `tx_end + latency` —
        // which for equal rates is never the binding term, so homogeneous
        // clusters keep their exact historical timings.
        let rx_ready = tx_start + self.params.latency;
        let rx_start = rx_ready.max(self.rx_free[dst]);
        let arrival = (rx_start + rx_ser).max(tx_end + self.params.latency);
        self.rx_free[dst] = arrival;

        let tx_queued = tx_start - t;
        let rx_queued = rx_start - rx_ready;
        self.tx_wait[src] += tx_queued;
        self.rx_wait[dst] += rx_queued;
        self.last_queued = tx_queued + rx_queued;
        if tx_queued > SimDur::ZERO {
            obs::count("net.tx_wait_ns", tx_queued.0);
        }
        if rx_queued > SimDur::ZERO {
            obs::count("net.rx_wait_ns", rx_queued.0);
        }
        arrival
    }

    /// NIC queueing paid by the most recent `deliver_at` call — the
    /// contention (as opposed to serialization/latency) component of that
    /// message's delivery time.
    pub fn last_queued(&self) -> SimDur {
        self.last_queued
    }

    /// Total messages injected so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes injected so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Accumulated TX-NIC queueing across all nodes: time frames sat
    /// behind earlier sends from the same node.
    pub fn tx_wait_total(&self) -> SimDur {
        self.tx_wait.iter().fold(SimDur::ZERO, |a, &b| a + b)
    }

    /// Accumulated RX-NIC queueing across all nodes: time frames sat
    /// behind earlier arrivals at the same node (fan-in contention).
    pub fn rx_wait_total(&self) -> SimDur {
        self.rx_wait.iter().fold(SimDur::ZERO, |a, &b| a + b)
    }

    /// Pure cost model (no state): time for one isolated message.
    pub fn isolated_cost(params: &NetParams, bytes: usize) -> SimDur {
        params.latency + SimDur::from_secs_f64(bytes as f64 / params.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(n, NetParams::ethernet_100mbps())
    }

    #[test]
    fn isolated_message_cost() {
        let mut n = net(2);
        // 12.5 MB/s → 125 KB takes 10 ms; plus 100 µs latency.
        let arr = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        assert_eq!(arr, SimTime::from_micros(10_100));
        assert_eq!(n.message_count(), 1);
        assert_eq!(n.byte_count(), 125_000);
    }

    #[test]
    fn tx_nic_serializes_back_to_back_sends() {
        let mut n = net(3);
        let a = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        let b = n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        // Second message waits for the first to finish serializing.
        assert_eq!(a, SimTime::from_micros(10_100));
        assert_eq!(b, SimTime::from_micros(20_100));
    }

    #[test]
    fn rx_nic_serializes_fan_in() {
        let mut n = net(3);
        let a = n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        let b = n.deliver_at(1, 2, 125_000, SimTime::ZERO);
        assert_eq!(a, SimTime::from_micros(10_100));
        // Both frames serialized on their own TX concurrently, but the
        // receiver lands them one after the other: the second frame queues
        // until 10.1 ms and then pays its own 10 ms RX serialization — it
        // must NOT land "for free" the instant the NIC frees up.
        assert_eq!(b, SimTime::from_micros(20_100));
        assert_eq!(n.tx_wait_total(), SimDur::ZERO);
        assert_eq!(n.rx_wait_total(), SimDur::from_micros(10_000));
    }

    #[test]
    fn contention_stats_split_tx_and_rx() {
        let mut n = net(3);
        // Two back-to-back sends from node 0: pure TX queueing.
        n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.tx_wait_total(), SimDur::from_micros(10_000));
        assert_eq!(n.rx_wait_total(), SimDur::ZERO);
    }

    #[test]
    fn last_queued_tracks_per_message_contention() {
        let mut n = net(3);
        n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::ZERO);
        // Fan-in: the second frame queues 10 ms on the RX NIC.
        n.deliver_at(1, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::from_micros(10_000));
        // Self-sends queue behind earlier copies on the same node.
        n.deliver_at(0, 0, 4_000_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::ZERO);
        n.deliver_at(0, 0, 4_000_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::from_millis(10));
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut n = net(4);
        let a = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        let b = n.deliver_at(2, 3, 125_000, SimTime::ZERO);
        assert_eq!(a, b); // switched network
    }

    #[test]
    fn self_send_is_memcpy() {
        let mut n = net(2);
        let arr = n.deliver_at(1, 1, 4_000_000, SimTime::ZERO);
        // 4 MB at 400 MB/s = 10 ms, no latency.
        assert_eq!(arr, SimTime::from_millis(10));
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut n = net(2);
        let arr = n.deliver_at(0, 1, 0, SimTime::from_secs(1));
        assert_eq!(arr, SimTime::from_secs(1) + NetParams::default().latency);
    }

    #[test]
    fn isolated_cost_helper_matches() {
        let p = NetParams::ethernet_100mbps();
        let c = Network::isolated_cost(&p, 125_000);
        assert_eq!(c, SimDur::from_micros(10_100));
    }
}
