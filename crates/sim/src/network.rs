//! Switched-Ethernet network model.
//!
//! Messages pay a one-way latency plus serialization at the link bandwidth.
//! The switch is non-blocking (distinct node pairs do not contend), but each
//! node's transmit and receive NICs serialize their own traffic — the
//! contention that matters for ghost-row exchanges and redistribution
//! bursts. Rank-to-self messages cost a memcpy.
//!
//! Delivery is split into a sender half ([`Network::tx_depart`]) and a
//! receiver half ([`Network::rx_land`]) so a sharded engine can run them on
//! different shards: the sender's shard charges the TX NIC when the send is
//! issued, and the destination's shard charges the RX NIC when the
//! coordinator applies the message at the window barrier — in the same
//! canonical order a single-shard run applies sends, so NIC state evolves
//! identically. [`Network::deliver_at`] composes the two for the
//! single-shard path.

use crate::params::NetParams;
use crate::time::{SimDur, SimTime};

/// Sender-side result of injecting a cross-node frame.
#[derive(Clone, Copy, Debug)]
pub struct TxDepart {
    /// Last bit leaves the sender's TX NIC.
    pub tx_end: SimTime,
    /// First bit reaches the destination NIC (one latency after TX start).
    pub rx_ready: SimTime,
    /// Time the frame queued behind earlier sends on the TX NIC.
    pub queued: SimDur,
}

/// Per-node NIC availability state.
#[derive(Clone, Debug)]
pub struct Network {
    params: NetParams,
    /// Per-node NIC bandwidth in bytes/s; defaults to the cluster-wide
    /// `params.bandwidth`, overridden per node for heterogeneous arrivals.
    nic_bw: Vec<f64>,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Completion time of the last rank-to-self copy, per node (self
    /// deliveries are FIFO like everything else).
    self_free: Vec<SimTime>,
    /// Accumulated time frames spent queued behind a busy NIC, per node.
    tx_wait: Vec<SimDur>,
    rx_wait: Vec<SimDur>,
    /// NIC queueing paid by the most recent [`Network::deliver_at`] call
    /// (TX + RX for cross-node frames, copy queueing for self-sends), for
    /// per-message trace attribution.
    last_queued: SimDur,
    messages: u64,
    bytes: u64,
}

impl Network {
    pub fn new(nodes: usize, params: NetParams) -> Self {
        assert!(params.bandwidth > 0.0 && params.self_bandwidth > 0.0);
        Network {
            params,
            nic_bw: vec![params.bandwidth; nodes],
            tx_free: vec![SimTime::ZERO; nodes],
            rx_free: vec![SimTime::ZERO; nodes],
            self_free: vec![SimTime::ZERO; nodes],
            tx_wait: vec![SimDur::ZERO; nodes],
            rx_wait: vec![SimDur::ZERO; nodes],
            last_queued: SimDur::ZERO,
            messages: 0,
            bytes: 0,
        }
    }

    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Overrides one node's NIC bandwidth (bytes/s). Serialization on
    /// that node's TX and RX NIC then runs at this rate instead of the
    /// cluster-wide default.
    pub fn set_nic_bandwidth(&mut self, node: usize, bandwidth: f64) {
        assert!(bandwidth > 0.0, "NIC bandwidth must be positive");
        self.nic_bw[node] = bandwidth;
    }

    /// Sender half of a cross-node delivery: serializes the frame on
    /// `src`'s TX NIC at time `t` and accounts it. Cut-through model: the
    /// first bit is on the wire as soon as TX starts, so the destination
    /// NIC can begin landing the frame one latency later.
    pub fn tx_depart(&mut self, src: usize, bytes: usize, t: SimTime) -> TxDepart {
        self.messages += 1;
        self.bytes += bytes as u64;
        let tx_ser = SimDur::from_secs_f64(bytes as f64 / self.nic_bw[src]);
        let tx_start = t.max(self.tx_free[src]);
        let tx_end = tx_start + tx_ser;
        self.tx_free[src] = tx_end;
        let queued = tx_start - t;
        self.tx_wait[src] += queued;
        TxDepart {
            tx_end,
            rx_ready: tx_start + self.params.latency,
            queued,
        }
    }

    /// Receiver half: lands a frame whose first bit reached `dst`'s NIC at
    /// `rx_ready` and whose sender finishes serializing at `tx_end`.
    /// Returns `(arrival, rx_queued)`. A frame that finds the RX NIC busy
    /// queues and then pays its full serialization there too — fan-in is
    /// as expensive as fan-out, which is what makes the eager-tree
    /// broadcast's root-side burst visible in simulated time.
    pub fn rx_land(
        &mut self,
        dst: usize,
        bytes: usize,
        rx_ready: SimTime,
        tx_end: SimTime,
    ) -> (SimTime, SimDur) {
        let rx_ser = SimDur::from_secs_f64(bytes as f64 / self.nic_bw[dst]);
        let rx_start = rx_ready.max(self.rx_free[dst]);
        // With asymmetric NIC rates the last bit cannot land before the
        // slower sender has pushed it out, hence the lower bound at
        // `tx_end + latency` — which for equal rates is never the binding
        // term, so homogeneous clusters keep their exact historical
        // timings.
        let arrival = (rx_start + rx_ser).max(tx_end + self.params.latency);
        self.rx_free[dst] = arrival;
        let queued = rx_start - rx_ready;
        self.rx_wait[dst] += queued;
        (arrival, queued)
    }

    /// Rank-to-self delivery: a memcpy at the node's copy bandwidth,
    /// FIFO behind earlier self-copies. Returns `(arrival, queued)`.
    pub fn deliver_self(&mut self, node: usize, bytes: usize, t: SimTime) -> (SimTime, SimDur) {
        self.messages += 1;
        self.bytes += bytes as u64;
        let copy = SimDur::from_secs_f64(bytes as f64 / self.params.self_bandwidth);
        let start = t.max(self.self_free[node]);
        let arrival = start + copy;
        self.self_free[node] = arrival;
        (arrival, start - t)
    }

    /// Schedules a `bytes`-byte message from `src` to `dst`, with the send
    /// call issued at `t`. Returns the virtual time at which the payload is
    /// fully available at the destination. Composes [`Self::tx_depart`]
    /// and [`Self::rx_land`] (or [`Self::deliver_self`]) — the
    /// single-shard path, and the reference the split halves must match.
    pub fn deliver_at(&mut self, src: usize, dst: usize, bytes: usize, t: SimTime) -> SimTime {
        if src == dst {
            let (arrival, queued) = self.deliver_self(src, bytes, t);
            self.last_queued = queued;
            return arrival;
        }
        let tx = self.tx_depart(src, bytes, t);
        let (arrival, rx_queued) = self.rx_land(dst, bytes, tx.rx_ready, tx.tx_end);
        self.last_queued = tx.queued + rx_queued;
        arrival
    }

    /// NIC queueing paid by the most recent `deliver_at` call — the
    /// contention (as opposed to serialization/latency) component of that
    /// message's delivery time.
    pub fn last_queued(&self) -> SimDur {
        self.last_queued
    }

    /// Total messages injected so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes injected so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Accumulated TX-NIC queueing across all nodes: time frames sat
    /// behind earlier sends from the same node.
    pub fn tx_wait_total(&self) -> SimDur {
        self.tx_wait.iter().fold(SimDur::ZERO, |a, &b| a + b)
    }

    /// Accumulated RX-NIC queueing across all nodes: time frames sat
    /// behind earlier arrivals at the same node (fan-in contention).
    pub fn rx_wait_total(&self) -> SimDur {
        self.rx_wait.iter().fold(SimDur::ZERO, |a, &b| a + b)
    }

    /// Pure cost model (no state): time for one isolated message.
    pub fn isolated_cost(params: &NetParams, bytes: usize) -> SimDur {
        params.latency + SimDur::from_secs_f64(bytes as f64 / params.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(n, NetParams::ethernet_100mbps())
    }

    #[test]
    fn isolated_message_cost() {
        let mut n = net(2);
        // 12.5 MB/s → 125 KB takes 10 ms; plus 100 µs latency.
        let arr = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        assert_eq!(arr, SimTime::from_micros(10_100));
        assert_eq!(n.message_count(), 1);
        assert_eq!(n.byte_count(), 125_000);
    }

    #[test]
    fn tx_nic_serializes_back_to_back_sends() {
        let mut n = net(3);
        let a = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        let b = n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        // Second message waits for the first to finish serializing.
        assert_eq!(a, SimTime::from_micros(10_100));
        assert_eq!(b, SimTime::from_micros(20_100));
    }

    #[test]
    fn rx_nic_serializes_fan_in() {
        let mut n = net(3);
        let a = n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        let b = n.deliver_at(1, 2, 125_000, SimTime::ZERO);
        assert_eq!(a, SimTime::from_micros(10_100));
        // Both frames serialized on their own TX concurrently, but the
        // receiver lands them one after the other: the second frame queues
        // until 10.1 ms and then pays its own 10 ms RX serialization — it
        // must NOT land "for free" the instant the NIC frees up.
        assert_eq!(b, SimTime::from_micros(20_100));
        assert_eq!(n.tx_wait_total(), SimDur::ZERO);
        assert_eq!(n.rx_wait_total(), SimDur::from_micros(10_000));
    }

    #[test]
    fn split_halves_compose_to_deliver_at() {
        // The sharded engine runs TX and RX on different shards with
        // other traffic in between; the split must be observationally
        // identical to the one-shot call.
        let mut whole = net(3);
        let mut split = net(3);
        let a = whole.deliver_at(0, 2, 125_000, SimTime::ZERO);
        let tx = split.tx_depart(0, 125_000, SimTime::ZERO);
        let (b, rxq) = split.rx_land(2, 125_000, tx.rx_ready, tx.tx_end);
        assert_eq!(a, b);
        assert_eq!(tx.queued + rxq, whole.last_queued());
        assert_eq!(whole.message_count(), split.message_count());
        assert_eq!(whole.byte_count(), split.byte_count());
    }

    #[test]
    fn contention_stats_split_tx_and_rx() {
        let mut n = net(3);
        // Two back-to-back sends from node 0: pure TX queueing.
        n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.tx_wait_total(), SimDur::from_micros(10_000));
        assert_eq!(n.rx_wait_total(), SimDur::ZERO);
    }

    #[test]
    fn last_queued_tracks_per_message_contention() {
        let mut n = net(3);
        n.deliver_at(0, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::ZERO);
        // Fan-in: the second frame queues 10 ms on the RX NIC.
        n.deliver_at(1, 2, 125_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::from_micros(10_000));
        // Self-sends queue behind earlier copies on the same node.
        n.deliver_at(0, 0, 4_000_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::ZERO);
        n.deliver_at(0, 0, 4_000_000, SimTime::ZERO);
        assert_eq!(n.last_queued(), SimDur::from_millis(10));
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut n = net(4);
        let a = n.deliver_at(0, 1, 125_000, SimTime::ZERO);
        let b = n.deliver_at(2, 3, 125_000, SimTime::ZERO);
        assert_eq!(a, b); // switched network
    }

    #[test]
    fn self_send_is_memcpy() {
        let mut n = net(2);
        let arr = n.deliver_at(1, 1, 4_000_000, SimTime::ZERO);
        // 4 MB at 400 MB/s = 10 ms, no latency.
        assert_eq!(arr, SimTime::from_millis(10));
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut n = net(2);
        let arr = n.deliver_at(0, 1, 0, SimTime::from_secs(1));
        assert_eq!(arr, SimTime::from_secs(1) + NetParams::default().latency);
    }

    #[test]
    fn isolated_cost_helper_matches() {
        let p = NetParams::ethernet_100mbps();
        let c = Network::isolated_cost(&p, 125_000);
        assert_eq!(c, SimDur::from_micros(10_100));
    }
}
