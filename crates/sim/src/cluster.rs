//! Cluster construction and SPMD execution.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::cpu::CpuSched;
use crate::ctx::{CrashedRank, SimCtx};
use crate::engine::{EngineState, NodeState, Shared, Status};
use crate::monitor::BlockHistory;
use crate::network::Network;
use crate::params::{NetParams, NodeSpec, OsParams};
use crate::report::{ProcReport, SimOutcome, SimReport};
use crate::script::{CrashKind, LoadScript};
use crate::shard::{MonBoard, OutMsg, WindowSync};
use crate::time::{SimDur, SimTime};
use crate::timeline::NcpTimeline;

/// A virtual cluster: node specs, OS and network parameters, and the load
/// script. One application rank runs per node (the paper's model).
#[derive(Clone)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    os: OsParams,
    net: NetParams,
    script: LoadScript,
    recorder: Option<dynmpi_obs::Recorder>,
    /// `Some(true)` forces the per-slice stepped CPU path, `Some(false)`
    /// forces fast-forward; `None` defers to `DYNMPI_SIM_STEPPED`.
    stepped: Option<bool>,
    /// Engine shards the run is partitioned into (virtual-time results are
    /// bit-identical for every value; only wall-clock changes).
    shards: usize,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes)
            .field("os", &self.os)
            .field("net", &self.net)
            .field("script", &self.script)
            .field("traced", &self.recorder.is_some())
            .field("shards", &self.shards)
            .finish()
    }
}

impl Cluster {
    /// `n` identical nodes.
    pub fn homogeneous(n: usize, spec: NodeSpec) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Cluster {
            nodes: vec![spec; n],
            os: OsParams::default(),
            net: NetParams::default(),
            script: LoadScript::dedicated(),
            recorder: None,
            stepped: None,
            shards: 1,
        }
    }

    /// Explicit per-node specs (heterogeneous clusters).
    pub fn heterogeneous(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        Cluster {
            nodes,
            os: OsParams::default(),
            net: NetParams::default(),
            script: LoadScript::dedicated(),
            recorder: None,
            stepped: None,
            shards: 1,
        }
    }

    /// Overrides OS scheduler parameters.
    pub fn with_os(mut self, os: OsParams) -> Self {
        self.os = os;
        self
    }

    /// Overrides network parameters.
    pub fn with_net(mut self, net: NetParams) -> Self {
        self.net = net;
        self
    }

    /// Installs the competing-process schedule.
    pub fn with_script(mut self, script: LoadScript) -> Self {
        self.script = script;
        self
    }

    /// Attaches an observability recorder: every rank thread gets a tracing
    /// scope for the duration of [`run_spmd`](Self::run_spmd), so spans,
    /// instants, and metrics land in `recorder` stamped with virtual time.
    pub fn with_recorder(mut self, recorder: dynmpi_obs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Forces the CPU advance mode: `true` runs the per-slice stepped
    /// reference path, `false` the closed-form fast-forward. Without this
    /// override the mode comes from the `DYNMPI_SIM_STEPPED` environment
    /// variable (`1` → stepped), defaulting to fast-forward. Both modes
    /// produce bit-identical virtual timings; the override exists so
    /// equivalence tests can compare them within one process.
    pub fn with_stepped(mut self, stepped: bool) -> Self {
        self.stepped = Some(stepped);
        self
    }

    /// Partitions the run into `shards` engine shards that advance on
    /// separate cores using conservative lookahead windows one network
    /// latency wide. Virtual-time results — `SimReport`, traces, monitor
    /// readings — are bit-identical for every shard count; only wall-clock
    /// time changes. Clamped to `[1, ranks]` at run time; a zero-latency
    /// network forces one shard (no lookahead to exploit).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        self.shards = shards;
        self
    }

    /// Number of seed nodes (= seed ranks). Scripted arrivals allocate
    /// additional ranks beyond this at [`run_spmd`](Self::run_spmd) time.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Node specs.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Network parameters in force.
    pub fn net_params(&self) -> &NetParams {
        &self.net
    }

    /// OS parameters in force.
    pub fn os_params(&self) -> &OsParams {
        &self.os
    }

    /// Builds the initial per-node engine state (called once per shard:
    /// every shard carries full-size vectors but only touches the entries
    /// it owns, so cloned initial state is exactly what a single-shard
    /// engine would hold for those entries).
    fn build_nodes(&self, n: usize, seed: usize) -> Vec<NodeState> {
        let arrivals = self.script.arrivals();
        (0..n)
            .map(|i| {
                let mut timeline = NcpTimeline::new();
                let (times, cycles) = self.script.split_for_node(i);
                for (t, ncp) in times {
                    timeline.set(t, ncp);
                }
                let (spec, online_at) = if i < seed {
                    (self.nodes[i], SimTime::ZERO)
                } else {
                    let a = &arrivals[i - seed];
                    (a.spec, a.online_at())
                };
                let mut sched = CpuSched::new(spec, self.os);
                sched.set_salt(0x5eed_0000_0000_0000 ^ (i as u64).wrapping_mul(0x9e37_79b9));
                let crash = self.script.crash_of(i);
                NodeState {
                    sched,
                    timeline,
                    cycle_count: 0,
                    cycle_events: cycles,
                    blocks: BlockHistory::new(),
                    online_at,
                    crash_at: crash.map(|c| c.at),
                    partitioned: crash.is_some_and(|c| c.kind == CrashKind::Partition),
                }
            })
            .collect()
    }

    fn build_net(&self, n: usize, seed: usize) -> Network {
        let mut net = Network::new(n, self.net);
        for (j, a) in self.script.arrivals().iter().enumerate() {
            if let Some(bw) = a.nic_bandwidth {
                net.set_nic_bandwidth(seed + j, bw);
            }
        }
        net
    }

    /// Runs `f` as an SPMD program: one invocation per rank, each on its
    /// own node, all in the same virtual time. Returns every rank's result
    /// plus the run report. Deterministic: same inputs → same virtual
    /// timings, bit for bit — including across shard counts.
    ///
    /// Panics (with the original payload) if any rank panics. A rank
    /// killed by a scripted fail-stop crash is *not* a panic: its result
    /// slot is filled with `R::default()` (which is why `R: Default`) and
    /// its [`ProcReport::crashed`] flag is set.
    pub fn run_spmd<R, F>(&self, f: F) -> SimOutcome<R>
    where
        R: Send + Default,
        F: Fn(&SimCtx) -> R + Send + Sync,
    {
        let seed = self.nodes.len();
        // Scripted arrivals get the ranks after the seed nodes, in script
        // order. Their threads exist from t = 0 (the engine needs every
        // rank's events) but their monitors read offline until
        // `online_at`; the runtime keeps them out of the compute group
        // until it admits them.
        let n = seed + self.script.arrivals().len();
        let stepped = self
            .stepped
            .unwrap_or_else(|| std::env::var("DYNMPI_SIM_STEPPED").is_ok_and(|v| v == "1"));
        // A zero-latency network has zero lookahead: nothing to overlap.
        let nshards = if self.net.latency == SimDur::ZERO {
            1
        } else {
            self.shards.clamp(1, n)
        };

        // pid → shard, contiguous blocks (ranks mostly talk to neighbors,
        // so contiguity keeps most traffic shard-local).
        let owner: Arc<Vec<usize>> = Arc::new((0..n).map(|pid| pid * nshards / n).collect());

        let shareds: Vec<Arc<Shared>> = if nshards == 1 {
            let mut state = EngineState::new(self.build_nodes(n, seed), &Vec::from_iter(0..n), {
                self.build_net(n, seed)
            });
            state.stepped = stepped;
            let shared = Arc::new(Shared::new(state));
            // Kick off: hand the turn to the earliest initial event.
            shared.state.lock().dispatch_next();
            vec![shared]
        } else {
            let ws = Arc::new(WindowSync::new(nshards));
            let board = Arc::new(MonBoard::new(
                self.build_nodes(n, seed)
                    .into_iter()
                    .map(|ns| ns.timeline)
                    .collect(),
            ));
            (0..nshards)
                .map(|shard| {
                    let mut state = EngineState::new_sharded(
                        self.build_nodes(n, seed),
                        &Vec::from_iter(0..n),
                        self.build_net(n, seed),
                        shard,
                        Arc::clone(&owner),
                        Arc::clone(&ws),
                        Arc::clone(&board),
                    );
                    state.stepped = stepped;
                    Arc::new(Shared::new(state))
                })
                .collect()
        };

        let f = &f;
        let joined: Vec<std::thread::Result<R>> = std::thread::scope(|s| {
            if nshards > 1 {
                let shareds = &shareds;
                let owner = Arc::clone(&owner);
                let latency = self.net.latency;
                s.spawn(move || coordinate(shareds, &owner, latency));
            }
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let shared = Arc::clone(&shareds[owner[pid]]);
                    let all = &shareds;
                    let recorder = self.recorder.clone();
                    s.spawn(move || {
                        // Guard dropped (and buffers flushed) after the rank
                        // finishes or unwinds.
                        let _obs = recorder.map(|r| r.install(pid));
                        let ctx = SimCtx::new(Arc::clone(&shared), pid, n);
                        shared.wait_turn(pid);
                        let out = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                        match out {
                            Ok(v) => {
                                ctx.finish();
                                Ok(v)
                            }
                            // A scripted fail-stop death: the engine
                            // already retired the rank (no `finish()`);
                            // the run continues with the survivors.
                            Err(e) if e.downcast_ref::<CrashedRank>().is_some() => Ok(R::default()),
                            Err(e) => {
                                // Poison every shard (and through the first
                                // one's wsync, the coordinator) so the
                                // whole run unwinds promptly.
                                let msg = format!("rank {pid} panicked inside the simulation");
                                for sh in all.iter() {
                                    sh.poison(pid, msg.clone());
                                }
                                if let Some(ws) = &shared.state.lock().wsync {
                                    ws.poison();
                                }
                                Err(e)
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| Err(e)))
                .collect()
        });

        if joined.iter().any(|r| r.is_err()) {
            // Re-raise the payload of the rank that poisoned the run (the
            // root cause); secondary unwinds from other ranks are noise.
            let origin = shareds.iter().find_map(|sh| sh.state.lock().panic_origin);
            let mut errs: Vec<(usize, Box<dyn std::any::Any + Send>)> = joined
                .into_iter()
                .enumerate()
                .filter_map(|(i, r)| r.err().map(|e| (i, e)))
                .collect();
            if let Some(o) = origin {
                if let Some(pos) = errs.iter().position(|(i, _)| *i == o) {
                    resume_unwind(errs.swap_remove(pos).1);
                }
            }
            resume_unwind(errs.swap_remove(0).1);
        }
        let results: Vec<R> = joined.into_iter().map(|r| r.unwrap()).collect();

        // Assemble the report: per-proc and per-node data from each pid's
        // owner shard, counters summed across shards (each shard counts
        // only what it executed).
        let guards: Vec<_> = shareds.iter().map(|sh| sh.state.lock()).collect();
        let report = SimReport {
            finish_time: (0..n)
                .map(|pid| guards[owner[pid]].procs[pid].finish_time)
                .max()
                .unwrap_or_default(),
            procs: (0..n)
                .map(|pid| {
                    let st = &guards[owner[pid]];
                    let p = &st.procs[pid];
                    ProcReport {
                        node: p.node,
                        cpu_time: p.cpu_time,
                        finish_time: p.finish_time,
                        msgs_sent: p.msgs_sent,
                        msgs_recvd: p.msgs_recvd,
                        bytes_sent: p.bytes_sent,
                        bytes_recvd: p.bytes_recvd,
                        blocked_fraction: st.nodes[p.node]
                            .blocks
                            .blocked_fraction(SimTime::ZERO, p.finish_time),
                        crashed: matches!(p.status, Status::Crashed),
                    }
                })
                .collect(),
            net_messages: guards.iter().map(|st| st.net.message_count()).sum(),
            net_bytes: guards.iter().map(|st| st.net.byte_count()).sum(),
            engine_events: guards.iter().map(|st| st.events_pushed).sum(),
            turn_bypasses: guards.iter().map(|st| st.bypasses).sum(),
        };
        SimOutcome { results, report }
    }
}

/// The window coordinator for a sharded run: waits for every shard to
/// quiesce, applies the window's cross-NIC messages in canonical
/// `(sent, src, seq)` order, then opens the next lookahead window at
/// `T_min + latency`. Runs until every rank finished (or the run is
/// poisoned / deadlocked).
fn coordinate(shareds: &[Arc<Shared>], owner: &[usize], latency: SimDur) {
    let nshards = shareds.len();
    let ws = Arc::clone(
        shareds[0]
            .state
            .lock()
            .wsync
            .as_ref()
            .expect("sharded engine without window sync"),
    );
    loop {
        if !ws.wait_all(nshards) {
            return; // poisoned
        }
        // Drain this window's cross-shard traffic and count survivors.
        let mut msgs: Vec<OutMsg> = Vec::new();
        let mut live = 0usize;
        for sh in shareds {
            let mut st = sh.state.lock();
            msgs.append(&mut st.outbox);
            live += st.live;
        }
        if live == 0 {
            // All ranks returned; any undrained messages have no receiver
            // and no observable effect.
            return;
        }
        // Apply in the canonical order — identical to the order a
        // single-shard run lands these sends in, so destination NIC state
        // and mailbox contents evolve bit-identically.
        msgs.sort_by_key(|m| (m.env.sent, m.env.src, m.env.seq));
        for mut m in msgs {
            let mut st = shareds[owner[m.dst]].state.lock();
            let (arrival, rx_queued) = st.net.rx_land(m.dst_node, m.bytes, m.rx_ready, m.tx_end);
            m.env.arrival = arrival;
            m.env.rx_queued = rx_queued;
            st.deliver(m.dst, m.env);
        }
        // Global lower bound on the next event.
        let mut tmin = SimTime::MAX;
        for sh in shareds {
            if let Some(t) = sh.state.lock().next_event_time() {
                tmin = tmin.min(t);
            }
        }
        if tmin == SimTime::MAX {
            // Live ranks, no events anywhere, nothing in flight: the same
            // deadlock a single-shard engine diagnoses in dispatch_next.
            // Per-rank wait details come from the owning shard (its entry
            // is the live one); other shards' copies of the same pid are
            // never dispatched and stay `Scheduled`.
            let mut details: Vec<(usize, String)> = Vec::new();
            let mut clock = SimTime::ZERO;
            for sh in shareds {
                let st = sh.state.lock();
                clock = clock.max(st.clock);
                details.extend(
                    st.stuck_recv_details()
                        .into_iter()
                        .filter(|&(pid, _)| owner[pid] == st.shard),
                );
            }
            details.sort_by_key(|&(pid, _)| pid);
            let stuck: Vec<usize> = details.iter().map(|&(pid, _)| pid).collect();
            let clauses: Vec<&str> = details.iter().map(|(_, d)| d.as_str()).collect();
            let msg = format!(
                "simulation deadlock at {clock}: no pending events, ranks {stuck:?} \
                 blocked at recv ({})",
                clauses.join("; ")
            );
            for sh in shareds {
                sh.poison(stuck.first().copied().unwrap_or(0), msg.clone());
            }
            ws.poison();
            return;
        }
        // Open the next window: anything sent at u ≥ tmin arrives at
        // u + latency ≥ window end, i.e. in a later window — no shard can
        // miss a message it should have seen (conservative lookahead).
        let wend = tmin + latency;
        ws.reset();
        for sh in shareds {
            let mut st = sh.state.lock();
            st.window_end = wend;
            st.quiesced = false;
            if st.dispatch_next() {
                drop(st);
                sh.cv.notify_all();
            } else {
                st.quiesced = true;
                ws.mark_quiescent();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDur, SimTime};

    #[test]
    fn single_rank_compute_advances_virtual_time() {
        let c = Cluster::homogeneous(1, NodeSpec::with_speed(1e6));
        let out = c.run_spmd(|ctx| {
            ctx.advance(2e6); // 2 s of work
            ctx.now()
        });
        assert_eq!(out.results[0], SimTime::from_secs(2));
        assert_eq!(out.report.finish_time, SimTime::from_secs(2));
        assert_eq!(out.report.procs[0].cpu_time, SimDur::from_secs(2));
    }

    #[test]
    fn ranks_progress_concurrently_in_virtual_time() {
        let c = Cluster::homogeneous(4, NodeSpec::with_speed(1e6));
        let out = c.run_spmd(|ctx| {
            ctx.advance(1e6);
            ctx.now()
        });
        // All ranks compute in parallel: everyone finishes at t = 1 s.
        for t in &out.results {
            assert_eq!(*t, SimTime::from_secs(1));
        }
    }

    #[test]
    fn ping_pong_timing() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1u8; 1000]);
                ctx.recv(1, 8)
            } else {
                let m = ctx.recv(0, 7);
                ctx.send(0, 8, m.clone());
                m
            }
        });
        assert_eq!(out.results[0], vec![1u8; 1000]);
        assert_eq!(out.report.net_messages, 2);
        assert_eq!(out.report.net_bytes, 2000);
        // Round trip ≥ 2 × (latency + serialization).
        assert!(out.report.finish_time > SimTime::from_micros(200));
    }

    #[test]
    fn message_order_preserved_per_pair() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                for i in 0..10u8 {
                    ctx.send(1, 1, vec![i]);
                }
                vec![]
            } else {
                (0..10).map(|_| ctx.recv(0, 1)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out.results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn tags_demultiplex() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10, vec![10]);
                ctx.send(1, 20, vec![20]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = ctx.recv(0, 20)[0];
                let a = ctx.recv(0, 10)[0];
                (u32::from(a) << 8) | u32::from(b)
            }
        });
        assert_eq!(out.results[1], (10 << 8) | 20);
    }

    #[test]
    fn recv_any_reports_source() {
        let c = Cluster::homogeneous(3, NodeSpec::default());
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (src, msg) = ctx.recv_any(5);
                    seen.push((src, msg[0]));
                }
                seen.sort_unstable();
                seen
            } else {
                ctx.send(0, 5, vec![ctx.rank() as u8]);
                vec![]
            }
        });
        assert_eq!(out.results[0], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let script = LoadScript::dedicated().at_time(1, SimTime::from_millis(50), 2);
            let c = Cluster::homogeneous(4, NodeSpec::with_speed(1e7)).with_script(script);
            let out = c.run_spmd(|ctx| {
                let r = ctx.rank();
                let n = ctx.nprocs();
                for _ in 0..20 {
                    ctx.advance(5e4);
                    // Ring exchange.
                    let next = (r + 1) % n;
                    let prev = (r + n - 1) % n;
                    ctx.send(next, 1, vec![r as u8; 64]);
                    let _ = ctx.recv(prev, 1);
                }
                ctx.now()
            });
            (out.results, out.report.finish_time)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    /// The tentpole contract in miniature: the same workload, any shard
    /// count, one `SimReport` — bit for bit (cost counters excluded: the
    /// shards pay for their windows in engine events).
    #[test]
    fn sharded_runs_match_single_shard_bit_for_bit() {
        let run = |shards: usize| {
            let script = LoadScript::dedicated()
                .at_time(1, SimTime::from_millis(50), 2)
                .at_cycle(2, 7, 1);
            let c = Cluster::homogeneous(6, NodeSpec::with_speed(1e7))
                .with_script(script)
                .with_shards(shards);
            let out = c.run_spmd(|ctx| {
                let r = ctx.rank();
                let n = ctx.nprocs();
                let mut probe_sum = 0u64;
                for i in 0..15 {
                    ctx.advance(4e4);
                    let next = (r + 1) % n;
                    let prev = (r + n - 1) % n;
                    ctx.send(next, 1, vec![r as u8; 256]);
                    let _ = ctx.recv(prev, 1);
                    ctx.phase_cycle_completed();
                    if i % 4 == r % 4 {
                        // Any-source traffic and monitor reads cross
                        // shard boundaries.
                        ctx.send((r + 2) % n, 9, vec![i as u8]);
                    }
                    if i % 4 == (r + 2) % 4 {
                        let _ = ctx.recv_any(9);
                    }
                    probe_sum += u64::from(ctx.probe(None, 9));
                    probe_sum += u64::from(ctx.dmpi_ps((r + 3) % n));
                    probe_sum += u64::from(ctx.vmstat((r + 1) % n));
                }
                (ctx.now(), ctx.cpu_time_exact(), probe_sum)
            });
            (out.results, out.report.virtual_outputs())
        };
        let one = run(1);
        assert_eq!(one, run(2), "--shards 2 diverged");
        assert_eq!(one, run(3), "--shards 3 diverged");
        assert_eq!(one, run(6), "--shards 6 diverged");
        assert_eq!(one, run(64), "over-sharding must clamp, not diverge");
    }

    #[test]
    fn competing_process_slows_only_its_node() {
        let mk = |loaded: bool| {
            let mut script = LoadScript::dedicated();
            if loaded {
                script = script.at_time(0, SimTime::ZERO, 1);
            }
            let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
            let out = c.run_spmd(|ctx| {
                ctx.advance(1e6);
                ctx.now().as_secs_f64()
            });
            out.results
        };
        let ded = mk(false);
        let loaded = mk(true);
        assert!((ded[0] - 1.0).abs() < 0.02);
        assert!(
            (loaded[0] - 2.0).abs() < 0.02,
            "loaded rank 0: {}",
            loaded[0]
        );
        assert!(
            (loaded[1] - 1.0).abs() < 0.02,
            "unloaded rank 1: {}",
            loaded[1]
        );
    }

    #[test]
    fn cycle_triggered_load_fires_after_kth_cycle() {
        let script = LoadScript::dedicated().at_cycle(0, 3, 2);
        let c = Cluster::homogeneous(1, NodeSpec::with_speed(1e6)).with_script(script);
        let out = c.run_spmd(|ctx| {
            let mut ncps = vec![];
            for _ in 0..5 {
                ctx.advance(1e4);
                ctx.phase_cycle_completed();
                ncps.push(ctx.true_ncp(0));
            }
            ncps
        });
        assert_eq!(out.results[0], vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn monitors_visible_from_other_ranks() {
        let script = LoadScript::dedicated().at_time(1, SimTime::ZERO, 3);
        let c = Cluster::homogeneous(2, NodeSpec::default()).with_script(script);
        let out = c.run_spmd(|ctx| {
            ctx.sleep(SimDur::from_secs(2));
            (ctx.dmpi_ps(0), ctx.dmpi_ps(1))
        });
        assert_eq!(out.results[0], (1, 4));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics_with_diagnosis() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let _ = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.recv(1, 99); // never sent
            }
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn sharded_deadlock_panics_with_diagnosis() {
        let c = Cluster::homogeneous(2, NodeSpec::default()).with_shards(2);
        let _ = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.recv(1, 99); // never sent
            }
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let _ = c.run_spmd(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 blocks forever; the poison must still unwind it.
            let _ = ctx.recv(1, 1);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn sharded_rank_panic_propagates() {
        let c = Cluster::homogeneous(3, NodeSpec::default()).with_shards(3);
        let _ = c.run_spmd(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            // Other ranks block forever; the poison must unwind all
            // shards and the coordinator.
            let _ = ctx.recv(1, 1);
        });
    }

    #[test]
    fn arrival_allocates_extra_rank_offline_until_cold_start_ends() {
        let script = LoadScript::dedicated().node_arrival(
            SimTime::from_secs(1),
            NodeSpec::with_speed(2e6),
            SimDur::from_millis(500),
        );
        let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
        let out = c.run_spmd(|ctx| {
            assert_eq!(ctx.nprocs(), 3);
            assert_eq!(ctx.online_at(2), SimTime::from_millis(1500));
            // Before the cold start completes: no daemon on node 2.
            let before = (ctx.node_online(2), ctx.dmpi_ps(2));
            ctx.sleep(SimDur::from_secs(2));
            let after = ctx.node_online(2);
            // The arrival's own hardware spec is live: 1e6 work takes
            // 0.5 s at 2e6 flops/s vs 1 s on the seed nodes.
            let t0 = ctx.now();
            ctx.advance(1e6);
            let elapsed = (ctx.now() - t0).as_secs_f64();
            (before, after, elapsed)
        });
        for (rank, &(before, after, elapsed)) in out.results.iter().enumerate() {
            assert_eq!(before, (false, 0), "rank {rank}");
            assert!(after, "rank {rank}");
            let want = if rank == 2 { 0.5 } else { 1.0 };
            assert!(
                (elapsed - want).abs() < 0.02,
                "rank {rank} elapsed {elapsed}"
            );
        }
    }

    #[test]
    fn arrival_nic_bandwidth_applies_to_new_rank_only() {
        let script = LoadScript::dedicated().node_arrival_with_nic(
            SimTime::ZERO,
            NodeSpec::default(),
            SimDur::ZERO,
            6.25e6, // half the default 12.5 MB/s
        );
        let c = Cluster::homogeneous(2, NodeSpec::default()).with_script(script);
        let out = c.run_spmd(|ctx| match ctx.rank() {
            0 => {
                ctx.send(1, 1, vec![0u8; 125_000]);
                ctx.send(2, 2, vec![0u8; 125_000]);
                SimTime::ZERO
            }
            1 => {
                ctx.recv(0, 1);
                ctx.now()
            }
            _ => {
                ctx.recv(0, 2);
                ctx.now()
            }
        });
        // Seed→seed keeps the historical timing; the slow NIC only
        // stretches the RX serialization on the arriving node.
        assert!(out.results[1] < out.results[2]);
    }

    #[test]
    fn failstop_crash_kills_rank_and_silences_monitors() {
        let script = LoadScript::dedicated().node_crash(SimTime::from_secs(1), 1);
        let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 1 {
                // Would run 10 s; dies at the t = 1 s op boundary.
                for _ in 0..100 {
                    ctx.advance(1e5);
                }
                return (99, 99);
            }
            ctx.sleep(SimDur::from_secs(3));
            // Dead node: daemon silent, receive times out instead of hanging.
            let ps = ctx.dmpi_ps(1);
            let to = ctx.recv_timeout(Some(1), 7, SimDur::from_secs(1));
            assert_eq!(
                to,
                Err(crate::RecvTimeout {
                    src: Some(1),
                    tag: 7
                })
            );
            (ps, 1)
        });
        assert_eq!(out.results[0], (0, 1));
        assert_eq!(out.results[1], (0, 0), "crashed rank yields the default");
        assert!(out.report.procs[1].crashed);
        assert!(!out.report.procs[0].crashed);
        assert_eq!(out.report.procs[1].finish_time, SimTime::from_secs(1));
        // Survivor finished at 3 s sleep + 1 s timeout (+ ε): makespan ≈ 4 s.
        assert!(out.report.finish_time >= SimTime::from_secs(4));
    }

    #[test]
    fn recv_timeout_delivers_when_message_beats_deadline() {
        let c = Cluster::homogeneous(2, NodeSpec::default());
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 0 {
                ctx.sleep(SimDur::from_millis(5));
                ctx.send(1, 3, vec![42]);
                0
            } else {
                let (src, m) = ctx
                    .recv_timeout(None, 3, SimDur::from_secs(1))
                    .expect("message in flight beats the deadline");
                assert_eq!((src, m[0]), (0, 42));
                1
            }
        });
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn partitioned_node_keeps_running_but_drops_traffic() {
        let script = LoadScript::dedicated().node_partition(SimTime::from_millis(100), 1);
        let c = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
        let out = c.run_spmd(|ctx| {
            if ctx.rank() == 1 {
                ctx.sleep(SimDur::from_secs(1));
                // Past the partition: local execution continues, sends are
                // dropped on the NIC.
                ctx.send(0, 5, vec![1]);
                ctx.advance(1e6);
                (0, ctx.now().as_secs_f64() as u64)
            } else {
                ctx.sleep(SimDur::from_secs(2));
                let ps = ctx.dmpi_ps(1);
                let got = ctx.recv_timeout(Some(1), 5, SimDur::from_secs(1));
                assert!(got.is_err(), "partitioned traffic must be dropped");
                (ps, 0)
            }
        });
        // Partitioned rank ran to completion (sleep 1 s + 1 s of work).
        assert_eq!(out.results[1].1, 2);
        assert!(!out.report.procs[1].crashed);
        // Remote monitor reads of the partitioned node are silent.
        assert_eq!(out.results[0].0, 0);
    }

    /// The tentpole determinism requirement: the replay contract holds
    /// through a crash — same results and virtual-time report for every
    /// shard count and both CPU advance modes.
    #[test]
    fn crash_is_bit_identical_across_shards_and_modes() {
        let run = |shards: usize, stepped: bool| {
            let script = LoadScript::dedicated()
                .at_time(2, SimTime::from_millis(40), 1)
                .node_crash(SimTime::from_millis(70), 1);
            let c = Cluster::homogeneous(4, NodeSpec::with_speed(1e7))
                .with_script(script)
                .with_shards(shards)
                .with_stepped(stepped);
            let out = c.run_spmd(|ctx| {
                let r = ctx.rank();
                let n = ctx.nprocs();
                let mut acc = 0u64;
                for i in 0..12 {
                    ctx.advance(5e4);
                    // All-to-root heartbeats with timeouts: survivors keep
                    // making progress once rank 1's node dies.
                    if r == 0 {
                        for p in 1..n {
                            if let Ok((src, m)) =
                                ctx.recv_timeout(Some(p), 2, SimDur::from_millis(40))
                            {
                                acc += src as u64 + u64::from(m[0]);
                            }
                        }
                    } else {
                        ctx.send(0, 2, vec![i as u8]);
                    }
                    acc += u64::from(ctx.dmpi_ps((r + 1) % n));
                }
                (ctx.now(), ctx.cpu_time_exact(), acc)
            });
            (out.results, out.report.virtual_outputs())
        };
        let base = run(1, false);
        assert_eq!(base, run(2, false), "--shards 2 diverged through a crash");
        assert_eq!(base, run(4, false), "--shards 4 diverged through a crash");
        assert_eq!(base, run(1, true), "stepped mode diverged through a crash");
        assert_eq!(
            base,
            run(3, true),
            "stepped sharded diverged through a crash"
        );
    }

    #[test]
    fn proc_reading_is_quantized() {
        let c = Cluster::homogeneous(1, NodeSpec::with_speed(1e6));
        let out = c.run_spmd(|ctx| {
            ctx.advance(37_000.0); // 37 ms of CPU
            (ctx.cpu_time_exact(), ctx.cpu_time_reading())
        });
        let (exact, reading) = out.results[0];
        assert!((exact.as_millis_f64() - 37.0).abs() < 0.1);
        assert_eq!(reading, SimDur::from_millis(30));
    }
}
