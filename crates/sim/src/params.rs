//! Cluster hardware and operating-system model parameters.
//!
//! Defaults are calibrated to the paper's testbeds: 550 MHz Pentium-III Xeon
//! nodes (≈100 Mflop/s effective on stencil codes) on switched 100 Mb/s
//! Ethernet, and 360 MHz Ultra-Sparc 5 nodes (≈60 Mflop/s) for the node
//! removal experiments. "Work" is measured in abstract work units that the
//! applications equate with floating-point operations.

use crate::time::SimDur;

/// Per-node CPU description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpec {
    /// Sustained work units (≈flops) per second with a dedicated CPU.
    pub speed: f64,
}

impl NodeSpec {
    /// A 550 MHz Pentium-III Xeon class node (§5 main testbed).
    pub fn xeon_550() -> Self {
        NodeSpec { speed: 100.0e6 }
    }

    /// A 360 MHz Sun Ultra-Sparc 5 class node (§5.3 testbed).
    pub fn ultra5_360() -> Self {
        NodeSpec { speed: 60.0e6 }
    }

    /// A node with an explicit work rate.
    pub fn with_speed(speed: f64) -> Self {
        assert!(speed > 0.0, "node speed must be positive");
        NodeSpec { speed }
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::xeon_550()
    }
}

/// Operating-system scheduler model.
///
/// The OS shares each node's CPU round-robin between the application rank
/// and `ncp` synthetic competing processes using fixed time slices. When the
/// application becomes runnable after blocking (e.g. at a receive) it waits
/// for its next slice — this is the CPU cost of communication on a loaded
/// node that §4.3 of the paper identifies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OsParams {
    /// Scheduler time slice. Linux-era default: 10 ms.
    pub quantum: SimDur,
    /// Deterministic phase drift applied to a node's slice schedule each
    /// time the application re-enters the run queue. Models run-queue
    /// reordering; prevents artificial lock-step between the application's
    /// iteration period and the slice cycle.
    pub reentry_drift: SimDur,
    /// Granularity of `/proc` CPU-time *readings* (the accounting itself is
    /// exact; readers see it truncated to this tick). 10 ms per §4.2.
    pub proc_tick: SimDur,
    /// Wake-up priority boost: when the application becomes runnable
    /// after blocking (a message arrived), its next slice is moved up so
    /// it waits only `(1 − boost)` of the normal round-robin delay —
    /// 2003-era UNIX schedulers prioritize I/O-bound processes over CPU
    /// hogs. 0 = strict round robin, 1 = immediate preemption.
    pub wakeup_boost: f64,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            quantum: SimDur::from_millis(10),
            reentry_drift: SimDur::from_micros(370),
            proc_tick: SimDur::from_millis(10),
            wakeup_boost: 0.96,
        }
    }
}

/// Network model: switched Ethernet with per-NIC serialization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetParams {
    /// One-way message latency (wire + stack), excluding serialization.
    pub latency: SimDur,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// CPU work charged to the sender per message (syscall + stack).
    pub send_cpu_base: f64,
    /// CPU work charged to the sender per byte (copy to kernel).
    pub send_cpu_per_byte: f64,
    /// CPU work charged to the receiver per message.
    pub recv_cpu_base: f64,
    /// CPU work charged to the receiver per byte.
    pub recv_cpu_per_byte: f64,
    /// Effective bandwidth for rank-to-self transfers (memcpy).
    pub self_bandwidth: f64,
}

impl NetParams {
    /// Switched 100 Mb/s Ethernet as in the paper's testbeds.
    ///
    /// 100 Mb/s ≈ 12.5 MB/s; ≈100 µs one-way latency; CPU cost of
    /// communication equivalent to ≈20 µs per message plus ≈0.25 work
    /// units per byte on a 100 Mflop/s node (TCP copy costs).
    pub fn ethernet_100mbps() -> Self {
        NetParams {
            latency: SimDur::from_micros(100),
            bandwidth: 12.5e6,
            send_cpu_base: 2_000.0,
            send_cpu_per_byte: 0.25,
            recv_cpu_base: 2_000.0,
            recv_cpu_per_byte: 0.25,
            self_bandwidth: 400.0e6,
        }
    }
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams::ethernet_100mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let x = NodeSpec::xeon_550();
        let u = NodeSpec::ultra5_360();
        assert!(x.speed > u.speed);
        let n = NetParams::ethernet_100mbps();
        assert!(n.bandwidth > 1e6 && n.latency > SimDur::ZERO);
        let os = OsParams::default();
        assert_eq!(os.quantum, SimDur::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let _ = NodeSpec::with_speed(0.0);
    }
}
