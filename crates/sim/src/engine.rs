//! Conservative sequential discrete-event engine.
//!
//! Every simulated rank runs as a real OS thread so application code can be
//! ordinary imperative Rust (loops, sends, receives), but **exactly one**
//! simulation thread executes at a time: a thread that blocks in virtual
//! time hands the "turn" to the thread owning the earliest pending event.
//! Event order is a total order on `(virtual time, sequence number)`, so a
//! run is a deterministic function of its inputs.

use std::collections::BinaryHeap;

use crate::sync::{Condvar, Mutex};

use crate::cpu::CpuSched;
use crate::mailbox::Mailbox;
use crate::monitor::BlockHistory;
use crate::network::Network;
use crate::time::{SimDur, SimTime};
use crate::timeline::NcpTimeline;

/// A scheduled wake-up for a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub pid: usize,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An in-flight or delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    /// Virtual time the sender posted the message (lets the receiver split
    /// its wait into late-sender vs. network time locally).
    pub sent: SimTime,
    pub arrival: SimTime,
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// What a blocked receiver is waiting for. `src == None` matches any sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RecvWait {
    pub src: Option<usize>,
    pub tag: u64,
}

impl RecvWait {
    pub fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.is_none_or(|s| s == env.src)
    }
}

/// Run state of a simulated process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Has a wake event in the queue (computing, sleeping, or waiting for a
    /// known message arrival).
    Scheduled,
    /// Currently holds the turn.
    Running,
    /// Waiting for a message whose arrival is not yet known.
    BlockedRecv(RecvWait),
    /// Program returned.
    Finished,
}

/// Per-process bookkeeping.
#[derive(Debug)]
pub(crate) struct ProcState {
    pub node: usize,
    pub status: Status,
    /// Exact accumulated CPU run time (the `/proc` counter before
    /// read-granularity truncation).
    pub cpu_time: SimDur,
    pub mailbox: Mailbox,
    pub msgs_sent: u64,
    pub msgs_recvd: u64,
    pub bytes_sent: u64,
    pub bytes_recvd: u64,
    pub finish_time: SimTime,
}

impl ProcState {
    fn new(node: usize) -> Self {
        ProcState {
            node,
            status: Status::Scheduled,
            cpu_time: SimDur::ZERO,
            mailbox: Mailbox::new(),
            msgs_sent: 0,
            msgs_recvd: 0,
            bytes_sent: 0,
            bytes_recvd: 0,
            finish_time: SimTime::ZERO,
        }
    }
}

/// Per-node bookkeeping.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub sched: CpuSched,
    pub timeline: NcpTimeline,
    pub cycle_count: u64,
    /// Cycle-triggered load changes: `(cycle, ncp)` sorted by cycle; fired
    /// when this node's application completes that phase cycle.
    pub cycle_events: Vec<(u64, u32)>,
    pub blocks: BlockHistory,
    /// Virtual time this node's monitors start reporting it online:
    /// `SimTime::ZERO` for seed nodes, `at + cold_start` for scripted
    /// arrivals. Before this instant `dmpi_ps` reads 0 (no daemon yet).
    pub online_at: SimTime,
}

pub(crate) struct EngineState {
    pub clock: SimTime,
    pub queue: BinaryHeap<Event>,
    pub procs: Vec<ProcState>,
    pub nodes: Vec<NodeState>,
    pub net: Network,
    pub current: Option<usize>,
    pub live: usize,
    pub seq: u64,
    /// Force the per-slice stepped CPU path (`DYNMPI_SIM_STEPPED=1`): the
    /// reference mode the closed-form fast-forward is validated against.
    pub stepped: bool,
    /// Heap events pushed over the run — the cost metric the fast path and
    /// turn-handoff bypass exist to shrink.
    pub events_pushed: u64,
    /// Turn handoffs elided because the next event belonged to the rank
    /// already holding the turn.
    pub bypasses: u64,
    pub panic_msg: Option<String>,
    /// Rank whose panic poisoned the run, so the runner can re-raise the
    /// original payload rather than a secondary unwind.
    pub panic_origin: Option<usize>,
}

impl EngineState {
    pub fn new(nodes: Vec<NodeState>, proc_nodes: &[usize], net: Network) -> Self {
        let mut st = EngineState {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            procs: proc_nodes.iter().map(|&n| ProcState::new(n)).collect(),
            nodes,
            net,
            current: None,
            live: proc_nodes.len(),
            seq: 0,
            stepped: false,
            events_pushed: 0,
            bypasses: 0,
            panic_msg: None,
            panic_origin: None,
        };
        for pid in 0..st.procs.len() {
            st.push_event(SimTime::ZERO, pid);
        }
        st
    }

    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub fn push_event(&mut self, time: SimTime, pid: usize) {
        let seq = self.next_seq();
        self.events_pushed += 1;
        self.queue.push(Event { time, seq, pid });
    }

    /// Drops stale heap heads — wake events for procs that re-blocked or
    /// finished since they were queued — so callers can inspect the
    /// earliest *live* event.
    pub fn prune_stale_heads(&mut self) {
        while let Some(ev) = self.queue.peek() {
            if matches!(self.procs[ev.pid].status, Status::Scheduled) {
                return;
            }
            self.queue.pop();
        }
    }

    /// Pops the next event, advances the clock, and hands the turn to its
    /// process. Returns `false` when the simulation has fully drained.
    /// Panics the simulation on deadlock.
    pub fn dispatch_next(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                if self.live > 0 {
                    let stuck: Vec<usize> = self
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| matches!(p.status, Status::BlockedRecv(_)))
                        .map(|(i, _)| i)
                        .collect();
                    self.panic_msg = Some(format!(
                        "simulation deadlock at {}: no pending events, ranks {stuck:?} \
                         blocked at recv",
                        self.clock
                    ));
                }
                self.current = None;
                return false;
            };
            // A wake event for a proc that was re-blocked or finished in the
            // meantime is stale; skip it.
            match self.procs[ev.pid].status {
                Status::Scheduled => {
                    debug_assert!(ev.time >= self.clock, "event in the past");
                    self.clock = self.clock.max(ev.time);
                    self.procs[ev.pid].status = Status::Running;
                    self.current = Some(ev.pid);
                    return true;
                }
                Status::Finished | Status::Running | Status::BlockedRecv(_) => continue,
            }
        }
    }
}

/// Shared engine handle: the state plus the turn-handoff condition variable.
pub(crate) struct Shared {
    pub state: Mutex<EngineState>,
    pub cv: Condvar,
}

impl Shared {
    pub fn new(state: EngineState) -> Self {
        Shared {
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling process thread until it holds the turn.
    pub fn wait_turn(&self, pid: usize) {
        let mut st = self.state.lock();
        loop {
            if let Some(msg) = &st.panic_msg {
                let msg = msg.clone();
                drop(st);
                panic!("{msg}");
            }
            if st.current == Some(pid) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks the simulation as failed and wakes everyone so all threads
    /// unwind promptly.
    pub fn poison(&self, origin: usize, msg: String) {
        let mut st = self.state.lock();
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
            st.panic_origin = Some(origin);
        }
        st.current = None;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{NetParams, NodeSpec, OsParams};

    fn state(nprocs: usize) -> EngineState {
        let nodes = (0..nprocs)
            .map(|_| NodeState {
                sched: CpuSched::new(NodeSpec::default(), OsParams::default()),
                timeline: NcpTimeline::new(),
                cycle_count: 0,
                cycle_events: Vec::new(),
                blocks: BlockHistory::new(),
                online_at: SimTime::ZERO,
            })
            .collect();
        let proc_nodes: Vec<usize> = (0..nprocs).collect();
        EngineState::new(
            nodes,
            &proc_nodes,
            Network::new(nprocs, NetParams::default()),
        )
    }

    #[test]
    fn event_ordering_is_time_then_seq() {
        let a = Event {
            time: SimTime::from_secs(1),
            seq: 5,
            pid: 0,
        };
        let b = Event {
            time: SimTime::from_secs(1),
            seq: 6,
            pid: 1,
        };
        let c = Event {
            time: SimTime::from_secs(2),
            seq: 1,
            pid: 2,
        };
        let mut heap = BinaryHeap::new();
        heap.push(c);
        heap.push(b);
        heap.push(a);
        assert_eq!(heap.pop(), Some(a));
        assert_eq!(heap.pop(), Some(b));
        assert_eq!(heap.pop(), Some(c));
    }

    #[test]
    fn dispatch_picks_lowest_pid_first_at_t0() {
        let mut st = state(3);
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0));
        assert_eq!(st.clock, SimTime::ZERO);
    }

    #[test]
    fn stale_events_are_skipped() {
        let mut st = state(2);
        // Proc 1 finished; its initial event must be skipped.
        st.procs[1].status = Status::Finished;
        st.live = 1;
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0));
        st.procs[0].status = Status::Finished;
        st.live = 0;
        assert!(!st.dispatch_next());
        assert!(st.panic_msg.is_none());
    }

    #[test]
    fn deadlock_is_detected() {
        let mut st = state(1);
        st.queue.clear();
        st.procs[0].status = Status::BlockedRecv(RecvWait {
            src: Some(0),
            tag: 1,
        });
        assert!(!st.dispatch_next());
        let msg = st.panic_msg.expect("deadlock should be flagged");
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("[0]"), "{msg}");
    }

    #[test]
    fn recv_wait_matching() {
        let env = Envelope {
            src: 3,
            tag: 7,
            sent: SimTime::ZERO,
            arrival: SimTime::ZERO,
            seq: 0,
            payload: vec![],
        };
        assert!(RecvWait {
            src: Some(3),
            tag: 7
        }
        .matches(&env));
        assert!(RecvWait { src: None, tag: 7 }.matches(&env));
        assert!(!RecvWait {
            src: Some(2),
            tag: 7
        }
        .matches(&env));
        assert!(!RecvWait {
            src: Some(3),
            tag: 8
        }
        .matches(&env));
    }

    #[test]
    fn proc_mailbox_delivers_in_arrival_seq_order() {
        // The indexed mailbox behind ProcState keeps the seed's matching
        // order; the full oracle suite lives in `mailbox.rs`.
        let mut p = ProcState::new(0);
        let mk = |seq, arrival_ms| Envelope {
            src: 1,
            tag: 0,
            sent: SimTime::ZERO,
            arrival: SimTime::from_millis(arrival_ms),
            seq,
            payload: vec![seq as u8],
        };
        p.mailbox.push(mk(2, 5));
        p.mailbox.push(mk(1, 5));
        p.mailbox.push(mk(3, 1));
        let wait = RecvWait {
            src: Some(1),
            tag: 0,
        };
        let now = SimTime::from_millis(10);
        assert_eq!(p.mailbox.pop_ready(wait, now).unwrap().seq, 3); // earliest arrival
        assert_eq!(p.mailbox.pop_ready(wait, now).unwrap().seq, 1); // seq breaks tie
    }

    #[test]
    fn prune_stale_heads_drops_only_dead_events() {
        let mut st = state(2);
        // Proc 1 blocked at a receive: its initial t=0 event is stale.
        st.procs[1].status = Status::BlockedRecv(RecvWait { src: None, tag: 0 });
        st.prune_stale_heads();
        // Proc 0's live event survives in front of proc 1's stale one.
        assert_eq!(st.queue.peek().map(|e| e.pid), Some(0));
        st.queue.pop();
        st.prune_stale_heads();
        assert!(st.queue.peek().is_none(), "stale event must be dropped");
    }
}
