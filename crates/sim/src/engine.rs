//! Conservative discrete-event engine core.
//!
//! Every simulated rank runs as a real OS thread so application code can be
//! ordinary imperative Rust (loops, sends, receives), but within one
//! *shard* **exactly one** simulation thread executes at a time: a thread
//! that blocks in virtual time hands the "turn" to the thread owning the
//! earliest pending event. Event order is a total order on
//! `(virtual time, pid, sequence number)`, so a run is a deterministic
//! function of its inputs.
//!
//! A sharded run (see [`crate::shard`]) builds one `EngineState` per
//! shard; each owns a contiguous pid range and advances only up to its
//! `window_end` (the conservative lookahead bound). Cross-NIC messages
//! are queued in `outbox` and applied by the coordinator at the window
//! barrier in canonical `(sent, src, seq)` order — exactly the order a
//! single-shard run applies them in, which is what keeps `SimReport`s
//! bit-identical across `--shards` values.

use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

use crate::cpu::CpuSched;
use crate::equeue::EventQueue;
use crate::mailbox::Mailbox;
use crate::monitor::BlockHistory;
use crate::network::Network;
use crate::shard::{MonBoard, OutMsg, WindowSync};
use crate::time::{SimDur, SimTime};
use crate::timeline::NcpTimeline;

/// A scheduled wake-up for a process.
///
/// `epoch` stamps the owning process's wake generation at push time: an
/// event is live only while the process has not been dispatched since. A
/// blocked receiver may accumulate several candidate wake-ups (a known
/// pending arrival plus one per matching delivery); the earliest
/// dispatches, and the dispatch bumps the epoch so the rest die in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub pid: usize,
    pub seq: u64,
    pub epoch: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap (the test oracle) is a max-heap; invert so the
        // earliest event pops first. `pid` before `seq`: at equal times
        // the lowest rank runs first regardless of push order, which is
        // what makes the cross-shard message order reproducible.
        (other.time, other.pid, other.seq, other.epoch)
            .cmp(&(self.time, self.pid, self.seq, self.epoch))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An in-flight or delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    /// Virtual time the sender posted the message (lets the receiver split
    /// its wait into late-sender vs. network time locally).
    pub sent: SimTime,
    pub arrival: SimTime,
    /// Per-sender sequence number (program order on the sending rank).
    /// `(sent, src, seq)` is the canonical total order on messages.
    pub seq: u64,
    /// RX-NIC queueing this frame paid (fan-in contention), carried to the
    /// receiver for trace attribution.
    pub rx_queued: SimDur,
    pub payload: Vec<u8>,
}

/// What a blocked receiver is waiting for. `src == None` matches any sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RecvWait {
    pub src: Option<usize>,
    pub tag: u64,
}

impl RecvWait {
    pub fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.is_none_or(|s| s == env.src)
    }
}

/// Run state of a simulated process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Has a wake event in the queue (computing or sleeping).
    Scheduled,
    /// Currently holds the turn.
    Running,
    /// Waiting for a message; wake events are pushed as candidate
    /// arrivals become known.
    BlockedRecv(RecvWait),
    /// Program returned.
    Finished,
    /// Killed by a scripted fail-stop crash: stopped executing at the
    /// crash time, never finishes. Dead for dispatch like `Finished`, but
    /// reported separately.
    Crashed,
}

/// Per-process bookkeeping.
#[derive(Debug)]
pub(crate) struct ProcState {
    pub node: usize,
    pub status: Status,
    /// Exact accumulated CPU run time (the `/proc` counter before
    /// read-granularity truncation).
    pub cpu_time: SimDur,
    pub mailbox: Mailbox,
    /// Wake generation: bumped every time this process is dispatched;
    /// queued events from earlier generations are dead.
    pub epoch: u64,
    /// Messages sent by this rank so far (the per-sender `Envelope::seq`).
    pub send_seq: u64,
    pub msgs_sent: u64,
    pub msgs_recvd: u64,
    pub bytes_sent: u64,
    pub bytes_recvd: u64,
    pub finish_time: SimTime,
}

impl ProcState {
    fn new(node: usize) -> Self {
        ProcState {
            node,
            status: Status::Scheduled,
            cpu_time: SimDur::ZERO,
            mailbox: Mailbox::new(),
            epoch: 0,
            send_seq: 0,
            msgs_sent: 0,
            msgs_recvd: 0,
            bytes_sent: 0,
            bytes_recvd: 0,
            finish_time: SimTime::ZERO,
        }
    }
}

/// Per-node bookkeeping.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub sched: CpuSched,
    pub timeline: NcpTimeline,
    pub cycle_count: u64,
    /// Cycle-triggered load changes: `(cycle, ncp)` sorted by cycle; fired
    /// when this node's application completes that phase cycle.
    pub cycle_events: Vec<(u64, u32)>,
    pub blocks: BlockHistory,
    /// Virtual time this node's monitors start reporting it online:
    /// `SimTime::ZERO` for seed nodes, `at + cold_start` for scripted
    /// arrivals. Before this instant `dmpi_ps` reads 0 (no daemon yet).
    pub online_at: SimTime,
    /// Scripted crash time: from this instant the node's NIC drops every
    /// frame (in-flight and future, both directions) and remote monitor
    /// reads of the node return 0. Static per-node data — identical in
    /// every shard's full-size `nodes` vector, so cross-shard drop
    /// decisions never depend on another shard's execution frontier.
    pub crash_at: Option<SimTime>,
    /// `true` for a scripted network *partition*: the NIC and remote
    /// monitors die at `crash_at` but the node's ranks keep executing
    /// (and can observe their own receive timeouts). `false` = fail-stop:
    /// the ranks also halt at the crash time.
    pub partitioned: bool,
}

pub(crate) struct EngineState {
    pub clock: SimTime,
    pub queue: EventQueue,
    pub procs: Vec<ProcState>,
    pub nodes: Vec<NodeState>,
    pub net: Network,
    pub current: Option<usize>,
    /// Live ranks owned by this shard.
    pub live: usize,
    pub seq: u64,
    /// This shard's index, and the pid → shard map for sharded runs
    /// (`None` for a single-shard engine, which owns every pid).
    pub shard: usize,
    pub owner: Option<Arc<Vec<usize>>>,
    /// Conservative dispatch horizon: events at or beyond it stay queued
    /// until the coordinator opens the next window. `SimTime::MAX` for a
    /// single-shard engine.
    pub window_end: SimTime,
    /// Cross-NIC messages sent this window, drained by the coordinator.
    pub outbox: Vec<OutMsg>,
    /// Whether this shard already reported quiescence for the current
    /// window (so it reports exactly once per window).
    pub quiesced: bool,
    pub wsync: Option<Arc<WindowSync>>,
    /// Cross-shard monitor mirror (sharded runs only).
    pub board: Option<Arc<MonBoard>>,
    /// Force the per-slice stepped CPU path (`DYNMPI_SIM_STEPPED=1`): the
    /// reference mode the closed-form fast-forward is validated against.
    pub stepped: bool,
    /// Queue events pushed over the run — the cost metric the fast path and
    /// turn-handoff bypass exist to shrink.
    pub events_pushed: u64,
    /// Turn handoffs elided because the next event belonged to the rank
    /// already holding the turn.
    pub bypasses: u64,
    pub panic_msg: Option<String>,
    /// Rank whose panic poisoned the run, so the runner can re-raise the
    /// original payload rather than a secondary unwind.
    pub panic_origin: Option<usize>,
}

impl EngineState {
    /// Single-shard engine owning every pid (the classic configuration,
    /// and the reference the sharded mode must match bit for bit).
    pub fn new(nodes: Vec<NodeState>, proc_nodes: &[usize], net: Network) -> Self {
        let width = (net.params().latency.0 / 4).max(1);
        let mut st = EngineState {
            clock: SimTime::ZERO,
            queue: EventQueue::new(width),
            procs: proc_nodes.iter().map(|&n| ProcState::new(n)).collect(),
            nodes,
            net,
            current: None,
            live: proc_nodes.len(),
            seq: 0,
            shard: 0,
            owner: None,
            window_end: SimTime::MAX,
            outbox: Vec::new(),
            quiesced: false,
            wsync: None,
            board: None,
            stepped: false,
            events_pushed: 0,
            bypasses: 0,
            panic_msg: None,
            panic_origin: None,
        };
        for pid in 0..st.procs.len() {
            st.push_event(SimTime::ZERO, pid);
        }
        st
    }

    /// One shard of a sharded engine: full-size state vectors (indexed by
    /// global pid/node — only this shard's entries are ever touched), with
    /// initial events for owned pids only. Starts quiescent; the
    /// coordinator opens the first window.
    #[allow(clippy::too_many_arguments)]
    pub fn new_sharded(
        nodes: Vec<NodeState>,
        proc_nodes: &[usize],
        net: Network,
        shard: usize,
        owner: Arc<Vec<usize>>,
        wsync: Arc<WindowSync>,
        board: Arc<MonBoard>,
    ) -> Self {
        let mut st = EngineState::new(nodes, proc_nodes, net);
        st.queue = EventQueue::new((st.net.params().latency.0 / 4).max(1));
        st.seq = 0;
        st.events_pushed = 0;
        st.shard = shard;
        st.live = owner.iter().filter(|&&s| s == shard).count();
        st.owner = Some(owner);
        st.window_end = SimTime::ZERO;
        st.quiesced = true;
        st.wsync = Some(wsync);
        st.board = Some(board);
        let owner = st.owner.clone().expect("just set");
        for (pid, &s) in owner.iter().enumerate() {
            if s == shard {
                st.push_event(SimTime::ZERO, pid);
            }
        }
        st
    }

    /// Is this engine one shard of a sharded run?
    pub fn sharded(&self) -> bool {
        self.owner.is_some()
    }

    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub fn push_event(&mut self, time: SimTime, pid: usize) {
        let seq = self.next_seq();
        self.events_pushed += 1;
        let epoch = self.procs[pid].epoch;
        self.queue.push(Event {
            time,
            pid,
            seq,
            epoch,
        });
    }

    fn event_live(&self, ev: &Event) -> bool {
        ev.epoch == self.procs[ev.pid].epoch
            && !matches!(
                self.procs[ev.pid].status,
                Status::Finished | Status::Crashed
            )
    }

    /// Is `node`'s NIC dead (crashed or partitioned) at virtual time `t`?
    /// Pure static data: safe to evaluate for any `t` from any shard.
    pub fn nic_dead_at(&self, node: usize, t: SimTime) -> bool {
        self.nodes[node].crash_at.is_some_and(|c| t >= c)
    }

    /// The fail-stop halt time of `node`'s ranks, if any. Partitioned
    /// nodes keep executing, so they have no halt time.
    pub fn failstop_at(&self, node: usize) -> Option<SimTime> {
        match self.nodes[node].partitioned {
            true => None,
            false => self.nodes[node].crash_at,
        }
    }

    /// Drops dead queue heads — events from an older wake generation, or
    /// for finished procs — so callers can inspect the earliest *live*
    /// event.
    pub fn prune_stale_heads(&mut self) {
        while let Some(ev) = self.queue.peek() {
            if self.event_live(ev) {
                return;
            }
            self.queue.pop();
        }
    }

    /// Earliest live event time, if any (for the coordinator's `T_min`).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.prune_stale_heads();
        self.queue.peek().map(|e| e.time)
    }

    /// Files a delivered message with the destination process and, if it
    /// is blocked on a matching receive, queues a wake-up at the arrival.
    /// Used by both the eager single-shard send path and the coordinator's
    /// window barrier — one code path, one behavior.
    ///
    /// Cross-NIC frames touching a dead NIC — the sender's or the
    /// receiver's node crashed/partitioned at or before the arrival — are
    /// dropped here, after the network already charged tx/rx (a dead NIC's
    /// frames still occupied the wire; charging uniformly keeps fast,
    /// stepped and every shard count bit-identical). Same-node delivery
    /// never crosses a NIC, so a partitioned node still talks to itself.
    pub fn deliver(&mut self, dst: usize, env: Envelope) {
        let src_node = self.procs[env.src].node;
        let dst_node = self.procs[dst].node;
        if src_node != dst_node
            && (self.nic_dead_at(src_node, env.arrival) || self.nic_dead_at(dst_node, env.arrival))
        {
            return;
        }
        let wake = matches!(self.procs[dst].status, Status::BlockedRecv(w) if w.matches(&env));
        let arrival = env.arrival;
        self.procs[dst].mailbox.push(env);
        if wake {
            self.push_event(arrival, dst);
        }
    }

    /// One `rank N waiting tag=.. src=.., mailbox depth D` clause per
    /// stuck (blocked-at-recv) rank owned by this engine — the first
    /// thing needed when a crash test hangs. Used by both the single-shard
    /// deadlock report below and the coordinator's sharded diagnosis.
    pub fn stuck_recv_details(&self) -> Vec<(usize, String)> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(pid, p)| match p.status {
                Status::BlockedRecv(w) => {
                    let src = match w.src {
                        Some(s) => s.to_string(),
                        None => "any".to_string(),
                    };
                    Some((
                        pid,
                        format!(
                            "rank {pid} waiting tag={} src={src}, mailbox depth {}",
                            w.tag,
                            p.mailbox.len()
                        ),
                    ))
                }
                _ => None,
            })
            .collect()
    }

    /// Pops the next live event **before `window_end`**, advances the
    /// clock, and hands the turn to its process. Returns `false` when
    /// nothing is dispatchable — the run drained (single shard), the
    /// window closed (sharded), or a deadlock was detected (single shard;
    /// the sharded equivalent is diagnosed by the coordinator, which sees
    /// every shard).
    pub fn dispatch_next(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.peek().copied() else {
                if self.window_end == SimTime::MAX && self.live > 0 {
                    let details = self.stuck_recv_details();
                    let stuck: Vec<usize> = details.iter().map(|&(pid, _)| pid).collect();
                    let clauses: Vec<&str> = details.iter().map(|(_, d)| d.as_str()).collect();
                    self.panic_msg = Some(format!(
                        "simulation deadlock at {}: no pending events, ranks {stuck:?} \
                         blocked at recv ({})",
                        self.clock,
                        clauses.join("; ")
                    ));
                }
                self.current = None;
                return false;
            };
            if !self.event_live(&ev) {
                self.queue.pop();
                continue;
            }
            // Strict bound: a running rank's clock always stays below the
            // window end, so every cross-shard observation at `now - L`
            // lands strictly before other shards' mutation frontier.
            if ev.time >= self.window_end {
                self.current = None;
                return false;
            }
            self.queue.pop();
            debug_assert!(ev.time >= self.clock, "event in the past");
            self.clock = self.clock.max(ev.time);
            let p = &mut self.procs[ev.pid];
            p.epoch += 1; // kill this proc's other queued wake-ups
            p.status = Status::Running;
            self.current = Some(ev.pid);
            return true;
        }
    }

    /// [`Self::dispatch_next`], reporting quiescence to the window
    /// coordinator (once per window) when nothing is dispatchable. All
    /// turn-token call sites use this; the coordinator itself calls
    /// `dispatch_next` and handles the result inline.
    pub fn dispatch_or_quiesce(&mut self) -> bool {
        let ok = self.dispatch_next();
        if !ok && !self.quiesced {
            if let Some(ws) = &self.wsync {
                self.quiesced = true;
                ws.mark_quiescent();
            }
        }
        ok
    }
}

/// Shared engine handle: the state plus the turn-handoff condition variable.
pub(crate) struct Shared {
    pub state: Mutex<EngineState>,
    pub cv: Condvar,
}

impl Shared {
    pub fn new(state: EngineState) -> Self {
        Shared {
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling process thread until it holds the turn.
    pub fn wait_turn(&self, pid: usize) {
        let mut st = self.state.lock();
        loop {
            if let Some(msg) = &st.panic_msg {
                let msg = msg.clone();
                drop(st);
                panic!("{msg}");
            }
            if st.current == Some(pid) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks the simulation as failed and wakes everyone so all threads
    /// unwind promptly.
    pub fn poison(&self, origin: usize, msg: String) {
        let mut st = self.state.lock();
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
            st.panic_origin = Some(origin);
        }
        st.current = None;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{NetParams, NodeSpec, OsParams};

    fn state(nprocs: usize) -> EngineState {
        let nodes = (0..nprocs)
            .map(|_| NodeState {
                sched: CpuSched::new(NodeSpec::default(), OsParams::default()),
                timeline: NcpTimeline::new(),
                cycle_count: 0,
                cycle_events: Vec::new(),
                blocks: BlockHistory::new(),
                online_at: SimTime::ZERO,
                crash_at: None,
                partitioned: false,
            })
            .collect();
        let proc_nodes: Vec<usize> = (0..nprocs).collect();
        EngineState::new(
            nodes,
            &proc_nodes,
            Network::new(nprocs, NetParams::default()),
        )
    }

    #[test]
    fn event_ordering_is_time_then_pid_then_seq() {
        let a = Event {
            time: SimTime::from_secs(1),
            pid: 0,
            seq: 6,
            epoch: 0,
        };
        let b = Event {
            time: SimTime::from_secs(1),
            pid: 1,
            seq: 5,
            epoch: 0,
        };
        let c = Event {
            time: SimTime::from_secs(2),
            pid: 0,
            seq: 1,
            epoch: 0,
        };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(c);
        heap.push(b);
        heap.push(a);
        // At equal times the lower pid wins even with a higher seq: the
        // dispatch order is (time, pid, seq).
        assert_eq!(heap.pop(), Some(a));
        assert_eq!(heap.pop(), Some(b));
        assert_eq!(heap.pop(), Some(c));
    }

    #[test]
    fn dispatch_picks_lowest_pid_first_at_t0() {
        let mut st = state(3);
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0));
        assert_eq!(st.clock, SimTime::ZERO);
    }

    #[test]
    fn stale_events_are_skipped() {
        let mut st = state(2);
        // Proc 1 finished; its initial event must be skipped.
        st.procs[1].status = Status::Finished;
        st.live = 1;
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0));
        st.procs[0].status = Status::Finished;
        st.live = 0;
        assert!(!st.dispatch_next());
        assert!(st.panic_msg.is_none());
    }

    #[test]
    fn epoch_mismatch_invalidates_events() {
        let mut st = state(1);
        // A second wake-up for proc 0 at a later time…
        st.push_event(SimTime::from_millis(5), 0);
        // …then the proc is dispatched (epoch bumps), re-scheduled, and
        // wakes at an even later time: both old events are now dead.
        assert!(st.dispatch_next());
        st.procs[0].status = Status::Scheduled;
        st.push_event(SimTime::from_millis(9), 0);
        assert!(st.dispatch_next());
        assert_eq!(st.clock, SimTime::from_millis(9));
        assert!(st.queue.is_empty(), "stale epoch events must be consumed");
    }

    #[test]
    fn window_end_parks_future_events() {
        let mut st = state(1);
        st.queue.clear();
        st.procs[0].status = Status::Scheduled;
        st.push_event(SimTime::from_millis(3), 0);
        st.window_end = SimTime::from_millis(2);
        assert!(!st.dispatch_next(), "event beyond the window must wait");
        assert!(st.panic_msg.is_none(), "a closed window is not a deadlock");
        st.window_end = SimTime::from_millis(4);
        assert!(st.dispatch_next());
        assert_eq!(st.clock, SimTime::from_millis(3));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut st = state(1);
        st.queue.clear();
        st.procs[0].status = Status::BlockedRecv(RecvWait {
            src: Some(0),
            tag: 1,
        });
        assert!(!st.dispatch_next());
        let msg = st.panic_msg.expect("deadlock should be flagged");
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("[0]"), "{msg}");
        // The diagnosis names the pending recv and the mailbox depth.
        assert!(msg.contains("tag=1"), "{msg}");
        assert!(msg.contains("src=0"), "{msg}");
        assert!(msg.contains("mailbox depth 0"), "{msg}");
    }

    #[test]
    fn stuck_recv_details_report_wait_and_depth() {
        let mut st = state(2);
        st.procs[1].status = Status::BlockedRecv(RecvWait { src: None, tag: 9 });
        st.procs[1].mailbox.push(Envelope {
            src: 0,
            tag: 3, // non-matching tag: deepens the mailbox, not the wait
            sent: SimTime::ZERO,
            arrival: SimTime::ZERO,
            seq: 1,
            rx_queued: SimDur::ZERO,
            payload: vec![],
        });
        let details = st.stuck_recv_details();
        assert_eq!(details.len(), 1);
        assert_eq!(details[0].0, 1);
        assert!(details[0].1.contains("tag=9"), "{}", details[0].1);
        assert!(details[0].1.contains("src=any"), "{}", details[0].1);
        assert!(details[0].1.contains("mailbox depth 1"), "{}", details[0].1);
    }

    #[test]
    fn dead_nic_drops_cross_node_frames_both_directions() {
        let mut st = state(3);
        st.queue.clear();
        st.nodes[1].crash_at = Some(SimTime::from_millis(5));
        let env = |src: usize, arrival_ms: u64| Envelope {
            src,
            tag: 0,
            sent: SimTime::ZERO,
            arrival: SimTime::from_millis(arrival_ms),
            seq: 1,
            rx_queued: SimDur::ZERO,
            payload: vec![],
        };
        // Before the crash: delivered.
        st.deliver(1, env(0, 4));
        assert_eq!(st.procs[1].mailbox.len(), 1);
        // At/after the crash: frames to and from the dead NIC are dropped.
        st.deliver(1, env(0, 5));
        assert_eq!(st.procs[1].mailbox.len(), 1);
        st.deliver(2, env(1, 7));
        assert_eq!(st.procs[2].mailbox.len(), 0);
        // Frames between two live NICs still flow.
        st.deliver(2, env(0, 7));
        assert_eq!(st.procs[2].mailbox.len(), 1);
    }

    #[test]
    fn crashed_status_kills_queued_events() {
        let mut st = state(2);
        st.procs[1].status = Status::Crashed;
        st.live = 1;
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0), "crashed rank's event must be dead");
    }

    #[test]
    fn failstop_vs_partition_halt_semantics() {
        let mut st = state(2);
        st.nodes[0].crash_at = Some(SimTime::from_secs(1));
        st.nodes[1].crash_at = Some(SimTime::from_secs(2));
        st.nodes[1].partitioned = true;
        // Fail-stop node: ranks halt at the crash time.
        assert_eq!(st.failstop_at(0), Some(SimTime::from_secs(1)));
        // Partitioned node: NIC dead, ranks keep running.
        assert_eq!(st.failstop_at(1), None);
        assert!(st.nic_dead_at(1, SimTime::from_secs(2)));
        assert!(!st.nic_dead_at(1, SimTime::from_millis(1999)));
    }

    #[test]
    fn recv_wait_matching() {
        let env = Envelope {
            src: 3,
            tag: 7,
            sent: SimTime::ZERO,
            arrival: SimTime::ZERO,
            seq: 0,
            rx_queued: SimDur::ZERO,
            payload: vec![],
        };
        assert!(RecvWait {
            src: Some(3),
            tag: 7
        }
        .matches(&env));
        assert!(RecvWait { src: None, tag: 7 }.matches(&env));
        assert!(!RecvWait {
            src: Some(2),
            tag: 7
        }
        .matches(&env));
        assert!(!RecvWait {
            src: Some(3),
            tag: 8
        }
        .matches(&env));
    }

    #[test]
    fn proc_mailbox_delivers_in_arrival_seq_order() {
        // The indexed mailbox behind ProcState keeps the canonical
        // matching order; the full oracle suite lives in `mailbox.rs`.
        let mut p = ProcState::new(0);
        let mk = |seq, arrival_ms| Envelope {
            src: 1,
            tag: 0,
            sent: SimTime::ZERO,
            arrival: SimTime::from_millis(arrival_ms),
            seq,
            rx_queued: SimDur::ZERO,
            payload: vec![seq as u8],
        };
        p.mailbox.push(mk(2, 5));
        p.mailbox.push(mk(1, 5));
        p.mailbox.push(mk(3, 1));
        let wait = RecvWait {
            src: Some(1),
            tag: 0,
        };
        let now = SimTime::from_millis(10);
        assert_eq!(p.mailbox.pop_ready(wait, now).unwrap().seq, 3); // earliest arrival
        assert_eq!(p.mailbox.pop_ready(wait, now).unwrap().seq, 1); // seq breaks tie
    }

    #[test]
    fn deliver_wakes_matching_blocked_receiver() {
        let mut st = state(2);
        st.queue.clear();
        st.procs[0].status = Status::BlockedRecv(RecvWait { src: None, tag: 4 });
        st.deliver(
            0,
            Envelope {
                src: 1,
                tag: 4,
                sent: SimTime::ZERO,
                arrival: SimTime::from_millis(7),
                seq: 1,
                rx_queued: SimDur::ZERO,
                payload: vec![],
            },
        );
        assert!(st.dispatch_next());
        assert_eq!(st.current, Some(0));
        assert_eq!(st.clock, SimTime::from_millis(7));
    }

    #[test]
    fn prune_stale_heads_drops_only_dead_events() {
        let mut st = state(2);
        // Proc 1's initial event is from a previous wake generation.
        st.procs[1].epoch += 1;
        st.prune_stale_heads();
        // Proc 0's live event survives in front of proc 1's stale one.
        assert_eq!(st.queue.peek().map(|e| e.pid), Some(0));
        st.queue.pop();
        st.prune_stale_heads();
        assert!(st.queue.peek().is_none(), "stale event must be dropped");
    }
}
