//! Cross-shard coordination for the sharded engine.
//!
//! A sharded run partitions ranks into contiguous per-shard domains, each
//! with its own [`crate::engine::EngineState`] (event queue, clock,
//! mailboxes, NIC state). Shards advance independently inside a
//! *lookahead window* `[T_min, T_min + L)` where `T_min` is the earliest
//! pending event across all shards and `L` is the network latency: any
//! message sent at `u >= T_min` arrives at `u + L >= T_min + L`, i.e. in
//! a later window, so no shard can receive anything it should already
//! have acted on — the classic conservative parallel-DES argument.
//!
//! This module holds the pieces shared across shard boundaries:
//!
//! * [`WindowSync`] — the barrier the coordinator waits on: each shard
//!   marks itself quiescent once it has no dispatchable event left before
//!   its `window_end`.
//! * [`OutMsg`] — a cross-NIC message captured at TX time; the RX half of
//!   the network model runs when the coordinator applies it to the
//!   destination shard, in the canonical `(sent, src, seq)` order that a
//!   single-shard run applies sends in.
//! * [`MonBoard`] — a mirror of every node's monitor-visible state
//!   (competing-process timeline, block history). Remote monitor reads
//!   sample it at `floor_to_second(now - L)`: the strict window bound
//!   guarantees every mutation at or before that instant has already been
//!   published, so readings are deterministic despite wall-clock races.

use crate::monitor::BlockHistory;
use crate::sync::{Condvar, Mutex};
use crate::time::SimTime;
use crate::timeline::NcpTimeline;

/// Barrier state between the coordinator and the shard turn tokens.
pub(crate) struct WindowSync {
    inner: Mutex<WsState>,
    cv: Condvar,
}

struct WsState {
    /// Shards currently quiescent (no dispatchable event before their
    /// `window_end`).
    quiescent: usize,
    poisoned: bool,
}

impl WindowSync {
    /// Starts with every shard quiescent so the coordinator's first
    /// window opens immediately.
    pub fn new(nshards: usize) -> Self {
        WindowSync {
            inner: Mutex::new(WsState {
                quiescent: nshards,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Called (at most once per window per shard) when a shard runs out
    /// of dispatchable events before its `window_end`.
    pub fn mark_quiescent(&self) {
        let mut g = self.inner.lock();
        g.quiescent += 1;
        self.cv.notify_all();
    }

    /// Marks the run failed; wakes the coordinator so it exits.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }

    /// Blocks until all `n` shards are quiescent. Returns `false` if the
    /// run was poisoned instead.
    pub fn wait_all(&self, n: usize) -> bool {
        let mut g = self.inner.lock();
        while g.quiescent < n && !g.poisoned {
            self.cv.wait(&mut g);
        }
        !g.poisoned
    }

    /// Re-arms the barrier for the next window.
    pub fn reset(&self) {
        self.inner.lock().quiescent = 0;
    }
}

/// A cross-NIC message in flight between shards. The sender already ran
/// the TX half of the network model (`tx_free`, serialization, latency);
/// the RX half runs on the destination shard when the coordinator applies
/// the message at the window barrier.
#[derive(Debug)]
pub(crate) struct OutMsg {
    pub env: crate::engine::Envelope,
    pub dst: usize,
    pub dst_node: usize,
    pub bytes: usize,
    /// First bit reaches the destination NIC at this instant.
    pub rx_ready: SimTime,
    /// Sender-side serialization completes at this instant (lower-bounds
    /// the arrival for asymmetric NIC rates).
    pub tx_end: SimTime,
}

/// One node's monitor-visible state, mirrored for cross-shard readers.
#[derive(Debug, Default)]
pub(crate) struct NodeMon {
    pub timeline: NcpTimeline,
    pub blocks: BlockHistory,
}

/// Shared monitor board: one mutex-guarded [`NodeMon`] per node. Owners
/// mirror every `timeline.set` / `block` / `unblock` into it; remote
/// `dmpi_ps`/`vmstat` reads lock a single entry briefly. Only built for
/// sharded runs — a single-shard engine reads its own state directly.
#[derive(Debug)]
pub(crate) struct MonBoard {
    pub nodes: Vec<Mutex<NodeMon>>,
}

impl MonBoard {
    pub fn new(timelines: Vec<NcpTimeline>) -> Self {
        MonBoard {
            nodes: timelines
                .into_iter()
                .map(|timeline| {
                    Mutex::new(NodeMon {
                        timeline,
                        blocks: BlockHistory::new(),
                    })
                })
                .collect(),
        }
    }
}
