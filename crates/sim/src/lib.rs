//! # dynmpi-sim — a deterministic virtual-time cluster simulator
//!
//! Substrate for the Dyn-MPI reproduction: stands in for the paper's
//! physical testbeds (550 MHz P-III Xeon / 100 Mb/s switched Ethernet and
//! Sun Ultra-Sparc 5 clusters) so that every experiment is fast,
//! deterministic, and scriptable.
//!
//! ## Model
//!
//! * **Nodes** have a work rate (≈flops/s). The OS shares each node's CPU
//!   round-robin in fixed 10 ms slices between the application rank and a
//!   scripted number of *competing processes* — the "non dedicated" part.
//! * **Network** is switched Ethernet: per-message latency + serialization
//!   at link bandwidth, with per-NIC contention. Sends and receives also
//!   charge *CPU* work, so communication is slower on loaded nodes.
//! * **Clocks**: an exact virtual wallclock (`gethrtime`), exact per-process
//!   CPU accounting readable only at 10 ms granularity (`/proc`), and two
//!   load monitors — the reliable `dmpi_ps` and the faulty `vmstat`.
//! * **Execution**: each rank is a real thread running ordinary Rust, but
//!   the engine serializes them in virtual-time order, so a run is a pure
//!   function of its inputs.
//!
//! ## Quick example
//!
//! ```
//! use dynmpi_sim::{Cluster, NodeSpec, LoadScript, SimTime};
//!
//! // Two nodes; a competing process lands on node 0 at t = 1 ms.
//! let script = LoadScript::dedicated().at_time(0, SimTime::from_millis(1), 1);
//! let cluster = Cluster::homogeneous(2, NodeSpec::with_speed(1e6)).with_script(script);
//! let out = cluster.run_spmd(|ctx| {
//!     ctx.advance(50_000.0); // 50 ms of work
//!     ctx.now().as_secs_f64()
//! });
//! // Node 0 lost CPU share after 1 ms; node 1 did not.
//! assert!(out.results[0] > out.results[1]);
//! ```

mod cluster;
mod cpu;
mod ctx;
mod engine;
mod equeue;
mod mailbox;
mod monitor;
mod network;
mod params;
mod report;
mod script;
mod shard;
mod sync;
mod time;
mod timeline;

pub use cluster::Cluster;
pub use cpu::{CpuSched, Segment, Step};
pub use ctx::RecvTimeout;
pub use ctx::SimCtx;
pub use monitor::{dmpi_ps_reading, vmstat_reading, BlockHistory};
pub use network::Network;
pub use params::{NetParams, NodeSpec, OsParams};
pub use report::{ProcReport, SimOutcome, SimReport};
pub use script::{CrashKind, LoadEvent, LoadScript, NodeArrival, NodeCrash, Trigger};
pub use time::{SimDur, SimTime};
pub use timeline::NcpTimeline;
