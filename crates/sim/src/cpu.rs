//! Per-node CPU scheduling model.
//!
//! The OS shares the CPU round-robin between the application rank and the
//! node's competing processes using fixed time slices (the *quantum*). We
//! model the schedule as a repeating cycle of `(ncp + 1)` slices in which
//! the application owns one slice. Consequences the paper depends on:
//!
//! * long computations receive a `1 / (ncp + 1)` share of the CPU — the
//!   *relative power* of a loaded node;
//! * an application that becomes runnable (e.g. a message arrived) outside
//!   its slice waits up to `ncp * quantum` before running — communication
//!   costs CPU time on loaded nodes (§4.3);
//! * a short iteration that straddles a slice boundary observes a wallclock
//!   spike of `ncp * quantum` even though it used little CPU — the
//!   `gethrtime` measurement noise that the grace period filters (§4.2).

use crate::params::{NodeSpec, OsParams};
use crate::time::{SimDur, SimTime};
use crate::timeline::NcpTimeline;

/// Deterministic 64-bit mix (splitmix64 finalizer) for per-round slot
/// rotation.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One step of CPU progress: the application either ran or waited until
/// `end`, accomplishing `work_done` units. `completed` is set when the
/// requested work finished within the segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub end: SimTime,
    pub work_done: f64,
    pub completed: bool,
}

impl Segment {
    /// Scheduler-span name for tracing: the application either ran during
    /// this segment or waited out competing processes' slices.
    pub fn kind(&self) -> &'static str {
        if self.work_done > 0.0 {
            "run"
        } else {
            "wait"
        }
    }
}

/// An integer-exact scheduling step: the unit the engine's stepped and
/// fast-forward CPU paths share. Work is expressed in nanoseconds of CPU
/// the application still needs ([`CpuSched::work_to_ns`]); `cpu` is how
/// much of it this step delivered and `slices` how many distinct scheduler
/// slices were (partially) run — one per step on the stepped path, many on
/// an aggregated fast-forward stretch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    pub end: SimTime,
    pub cpu: SimDur,
    pub slices: u64,
    pub completed: bool,
}

impl Step {
    /// Scheduler-span name for tracing: pure run, pure wait, or an
    /// aggregated stretch mixing both.
    pub fn kind(&self, start: SimTime) -> &'static str {
        if self.cpu == SimDur::ZERO {
            "wait"
        } else if self.end.since(start) == self.cpu {
            "run"
        } else {
            "run+wait"
        }
    }
}

/// Slice-cycle scheduler state for a single node.
#[derive(Clone, Debug)]
pub struct CpuSched {
    spec: NodeSpec,
    os: OsParams,
    /// Added to the clock before computing the slice phase; re-anchored on
    /// run-queue re-entry (wake-up boost) deterministically.
    phase_offset: u64,
    /// Count of run-queue re-entries (drives deterministic drift).
    reentries: u32,
    /// Per-node salt for the slot-rotation hash.
    salt: u64,
}

impl CpuSched {
    pub fn new(spec: NodeSpec, os: OsParams) -> Self {
        assert!(os.quantum > SimDur::ZERO, "quantum must be positive");
        CpuSched {
            spec,
            os,
            phase_offset: 0,
            reentries: 0,
            salt: 0,
        }
    }

    /// Node work rate (units/second) when dedicated.
    pub fn speed(&self) -> f64 {
        self.spec.speed
    }

    /// Scheduler parameters in force.
    pub fn os(&self) -> &OsParams {
        &self.os
    }

    /// Sets the per-node hash salt (so different nodes' schedules are
    /// decorrelated).
    pub fn set_salt(&mut self, salt: u64) {
        self.salt = salt;
    }

    /// The application slice's start position within round `round` of a
    /// `(ncp+1)·q` schedule: rotated pseudo-randomly per round, so
    /// slice-boundary positions vary from cycle to cycle the way real
    /// scheduler arrivals do (exactly one slice per round either way).
    fn slot_start(&self, round: u64, cycle: u64, q: u64) -> u64 {
        if cycle == q {
            return 0; // ncp == 0 never reaches here, but be safe
        }
        mix(round ^ self.salt) % (cycle - q + 1)
    }

    /// Records that the application re-entered the run queue after
    /// blocking at time `t` with `ncp` competitors. The scheduler's
    /// wake-up boost moves its next slice up: instead of waiting out the
    /// competitors' slices, it waits only `(1 − wakeup_boost)` of that
    /// delay (plus a small deterministic drift that keeps the schedule
    /// from locking step with the application's cycle).
    pub fn note_reentry(&mut self, t: SimTime, ncp: u32) {
        self.reentries = self.reentries.wrapping_add(1);
        let drift = (u64::from(self.reentries) * self.os.reentry_drift.0) % 300_000;
        if ncp == 0 {
            self.phase_offset = self.phase_offset.wrapping_add(drift);
            return;
        }
        let q = self.os.quantum.0;
        let cycle = (u64::from(ncp) + 1) * q;
        let shifted = t.0.wrapping_add(self.phase_offset);
        let round = shifted / cycle;
        let pos = shifted % cycle;
        let start = self.slot_start(round, cycle, q);
        let boosted = if pos >= start && pos < start + q {
            // Woken inside our slice: the scheduler recharges the
            // timeslice (wake-up preemption), so a fresh quantum starts
            // now — otherwise a wake landing near the slice end would
            // systematically straddle into a full competitor round.
            drift
        } else {
            let full_wait = if pos < start {
                start - pos
            } else {
                cycle - pos + start
            };
            (full_wait as f64 * (1.0 - self.os.wakeup_boost)).round() as u64 + drift
        };
        // Re-anchor the schedule so our slice begins at t + boosted: put
        // t + boosted at this round's rotated slot start.
        let target = t.0.wrapping_add(boosted);
        let off0 = (cycle - (target % cycle)) % cycle;
        let r = (target.wrapping_add(off0)) / cycle;
        self.phase_offset = off0.wrapping_add(self.slot_start(r, cycle, q));
    }

    /// Computes the next scheduling segment starting at `t`, given the
    /// competing-process count `ncp` (constant until `next_change`) and the
    /// application's remaining work.
    pub fn segment(
        &self,
        t: SimTime,
        ncp: u32,
        next_change: Option<SimTime>,
        remaining_work: f64,
    ) -> Segment {
        if remaining_work <= 0.0 {
            return Segment {
                end: t,
                work_done: 0.0,
                completed: true,
            };
        }
        let change_bound = next_change.unwrap_or(SimTime::MAX);
        debug_assert!(change_bound > t, "ncp change not strictly in the future");

        if ncp == 0 {
            // Dedicated CPU: run straight through (bounded only by the
            // load change).
            return self.run_until(t, remaining_work, change_bound, change_bound);
        }

        let q = self.os.quantum.0;
        let cycle = (u64::from(ncp) + 1) * q;
        let shifted = t.0.wrapping_add(self.phase_offset);
        let round = shifted / cycle;
        let pos = shifted % cycle;
        let start = self.slot_start(round, cycle, q);
        if pos >= start && pos < start + q {
            // Inside our slice: run until it ends, the load changes, or
            // the work completes.
            let slice_end = SimTime(t.0 + (start + q - pos));
            return self.run_until(t, remaining_work, slice_end, change_bound);
        }
        // Competing processes own the CPU; wait for our next slice (this
        // round's if still ahead, else next round's) or for the load to
        // change, whichever is first.
        let next_start_shifted = if pos < start {
            round * cycle + start
        } else {
            (round + 1) * cycle + self.slot_start(round + 1, cycle, q)
        };
        let wait_end = SimTime(t.0 + (next_start_shifted - shifted));
        let end = wait_end.min(change_bound);
        Segment {
            end,
            work_done: 0.0,
            completed: false,
        }
    }

    /// Runs from `t` at full speed, bounded by `bound` and `change_bound`.
    fn run_until(
        &self,
        t: SimTime,
        remaining_work: f64,
        bound: SimTime,
        change_bound: SimTime,
    ) -> Segment {
        let finish_ns = self.work_to_ns(remaining_work).0;
        if finish_ns == 0 {
            // Work too small to register at ns granularity: complete in
            // place instead of inflating the segment by 1 ns (which would
            // diverge from the closed-form integer paths).
            return Segment {
                end: t,
                work_done: remaining_work,
                completed: true,
            };
        }
        let finish = SimTime(t.0.saturating_add(finish_ns));
        let end = finish.min(bound).min(change_bound);
        if end == finish {
            Segment {
                end,
                work_done: remaining_work,
                completed: true,
            }
        } else {
            let done = (end - t).as_secs_f64() * self.spec.speed;
            Segment {
                end,
                work_done: done.min(remaining_work),
                completed: false,
            }
        }
    }

    /// Converts work units into whole nanoseconds of dedicated CPU,
    /// rounding up — the same `ceil(work / speed · 1e9)` the float path
    /// uses, computed once so the stepped and fast-forward integer paths
    /// share one quantization and stay bit-identical.
    pub fn work_to_ns(&self, work: f64) -> SimDur {
        if work <= 0.0 {
            return SimDur::ZERO;
        }
        SimDur((work / self.spec.speed * 1e9).ceil() as u64)
    }

    /// Integer-exact single scheduling step: the *stepped* reference path
    /// (`DYNMPI_SIM_STEPPED=1`). `need` is the remaining dedicated-CPU
    /// nanoseconds from [`Self::work_to_ns`]. Advances by at most one
    /// slice or one wait, exactly like [`Self::segment`] but without any
    /// float accumulation, so [`Self::fast_forward`] can match it bit for
    /// bit.
    pub fn step_ns(
        &self,
        t: SimTime,
        ncp: u32,
        next_change: Option<SimTime>,
        need: SimDur,
    ) -> Step {
        if need == SimDur::ZERO {
            return Step {
                end: t,
                cpu: SimDur::ZERO,
                slices: 0,
                completed: true,
            };
        }
        let change_bound = next_change.unwrap_or(SimTime::MAX);
        debug_assert!(change_bound > t, "ncp change not strictly in the future");
        if ncp == 0 {
            return self.finish_by(t, need, SimTime::MAX, change_bound);
        }
        let q = self.os.quantum.0;
        let cycle = (u64::from(ncp) + 1) * q;
        let shifted = t.0.wrapping_add(self.phase_offset);
        let round = shifted / cycle;
        let pos = shifted % cycle;
        let start = self.slot_start(round, cycle, q);
        if pos >= start && pos < start + q {
            let slice_end = SimTime(t.0 + (start + q - pos));
            return self.finish_by(t, need, slice_end, change_bound);
        }
        let next_start_shifted = if pos < start {
            round * cycle + start
        } else {
            (round + 1) * cycle + self.slot_start(round + 1, cycle, q)
        };
        let wait_end = SimTime(t.0 + (next_start_shifted - shifted));
        Step {
            end: wait_end.min(change_bound),
            cpu: SimDur::ZERO,
            slices: 0,
            completed: false,
        }
    }

    /// Runs from `t` for up to `need` ns of CPU, bounded by `bound` and
    /// `change_bound` — the integer twin of [`Self::run_until`].
    fn finish_by(&self, t: SimTime, need: SimDur, bound: SimTime, change_bound: SimTime) -> Step {
        let finish = SimTime(t.0.saturating_add(need.0));
        let end = finish.min(bound).min(change_bound);
        Step {
            end,
            cpu: end.since(t),
            slices: 1,
            completed: end == finish,
        }
    }

    /// Closed-form multi-round fast-forward: delivers as much of `need`
    /// as fits before `next_change` in O(1), no matter how many scheduler
    /// rounds that spans.
    ///
    /// The invariant that makes this sound: the rotated [`Self::slot_start`]
    /// moves the application slice *within* its `(ncp+1)·q` round but never
    /// changes the one-slice-per-round total, so `r` whole rounds always
    /// deliver exactly `r·q` ns of CPU. Only the partial first slice and the
    /// final slice need their rotated positions evaluated; everything in
    /// between is arithmetic. Returns exactly what iterating
    /// [`Self::step_ns`] to the same point would have accumulated.
    pub fn fast_forward(
        &self,
        t: SimTime,
        ncp: u32,
        next_change: Option<SimTime>,
        need: SimDur,
    ) -> Step {
        if need == SimDur::ZERO || ncp == 0 {
            return self.step_ns(t, ncp, next_change, need);
        }
        let q = self.os.quantum.0;
        let cycle = (u64::from(ncp) + 1) * q;
        let Some(shifted) = t.0.checked_add(self.phase_offset) else {
            // The shifted clock wrapped (unreachable for realistic offsets,
            // which stay below two cycles): defer to the wrapping stepper.
            return self.step_ns(t, ncp, next_change, need);
        };
        let round = shifted / cycle;
        let pos = shifted % cycle;
        let start = self.slot_start(round, cycle, q);
        // First (possibly partial) slice, plus the round holding the next
        // untouched full slice.
        let (consumed, first_slices, next_round) = if pos >= start && pos < start + q {
            let avail = start + q - pos;
            if need.0 <= avail {
                // Completes inside the current slice: a single step.
                return self.step_ns(t, ncp, next_change, need);
            }
            (avail, 1u64, round + 1)
        } else if pos < start {
            (0, 0, round)
        } else {
            (0, 0, round + 1)
        };
        let rem = need.0 - consumed;
        let k = rem.div_ceil(q); // further slices needed, >= 1
        let rf = next_round + k - 1; // round of the final (partial) slice
        let last = rem - (k - 1) * q; // ns run in the final slice, 1..=q
        let shifted128 = shifted as u128;
        let cycle128 = cycle as u128;
        let finish_shifted =
            rf as u128 * cycle128 + self.slot_start(rf, cycle, q) as u128 + last as u128;
        let change_shifted = next_change.map(|c| c.0 as u128 + self.phase_offset as u128);
        if change_shifted.is_none_or(|cs| finish_shifted <= cs) {
            return Step {
                end: SimTime(t.0 + (finish_shifted - shifted128) as u64),
                cpu: need,
                slices: first_slices + k,
                completed: true,
            };
        }
        // The load changes before the work finishes. Aggregate only the
        // whole rounds that provably end before the change — every round
        // `r` with `(r+1)·cycle <= change_shifted` runs its full `q` slice
        // regardless of rotation — and let the caller re-plan from there.
        let cs = change_shifted.unwrap();
        let r_safe = match (cs / cycle128).checked_sub(1) {
            Some(r) if r >= next_round as u128 => r as u64,
            // No whole round fits before the change: single-step through
            // the boundary neighborhood.
            _ => return self.step_ns(t, ncp, next_change, need),
        };
        // finish_shifted > cs >= (r_safe+1)·cycle and slot+last <= cycle
        // together force r_safe < rf, so these rounds are all fully used.
        let full = r_safe + 1 - next_round;
        let end_shifted =
            r_safe as u128 * cycle128 + self.slot_start(r_safe, cycle, q) as u128 + q as u128;
        debug_assert!(end_shifted <= cs && end_shifted > shifted128);
        Step {
            end: SimTime(t.0 + (end_shifted - shifted128) as u64),
            cpu: SimDur(consumed + full * q),
            slices: first_slices + full,
            completed: false,
        }
    }

    /// Drives [`Self::fast_forward`] across as many load-script phases as
    /// the work spans and returns one aggregate [`Step`] — the whole
    /// compute stretch in a single call, so the engine pays one span and
    /// one event per `advance` instead of one per phase. The timeline must
    /// be immutable for the duration (it is: only the node's own rank
    /// mutates it, and that rank is the one computing).
    ///
    /// Always completes: each leg strictly advances `t` (a positive-work
    /// step never returns `end == t`), and the total is exactly what the
    /// per-phase loop accumulates.
    pub fn fast_forward_script(&self, t: SimTime, timeline: &NcpTimeline, need: SimDur) -> Step {
        let start = t;
        let mut t = t;
        let mut left = need;
        let mut cpu = SimDur::ZERO;
        let mut slices = 0u64;
        loop {
            let ncp = timeline.at(t);
            let next = timeline.next_change_after(t);
            let st = self.fast_forward(t, ncp, next, left);
            cpu += st.cpu;
            left = left - st.cpu;
            slices += st.slices;
            debug_assert!(st.completed || st.end > t, "no progress in fast-forward");
            t = st.end;
            if st.completed {
                debug_assert_eq!(cpu, need);
                debug_assert!(t >= start);
                return Step {
                    end: t,
                    cpu,
                    slices,
                    completed: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> CpuSched {
        CpuSched::new(NodeSpec::with_speed(1e6), OsParams::default())
    }

    /// Drives `segment` in a loop the way the engine does and returns the
    /// finish time plus accumulated CPU run time.
    fn drive(s: &CpuSched, start: SimTime, work: f64, ncp: u32) -> (SimTime, SimDur) {
        let mut t = start;
        let mut remaining = work;
        let mut cpu = SimDur::ZERO;
        for _ in 0..1_000_000 {
            let seg = s.segment(t, ncp, None, remaining);
            if seg.work_done > 0.0 {
                cpu += seg.end - t;
            }
            remaining -= seg.work_done;
            t = seg.end;
            if seg.completed {
                return (t, cpu);
            }
        }
        panic!("segment loop did not terminate");
    }

    #[test]
    fn dedicated_runs_at_full_speed() {
        let s = sched();
        let (end, cpu) = drive(&s, SimTime::ZERO, 1e6, 0); // 1 second of work
        assert_eq!(end, SimTime::from_secs(1));
        assert_eq!(cpu, SimDur::from_secs(1));
    }

    #[test]
    fn one_competitor_halves_throughput() {
        let s = sched();
        // 1 s of CPU work, 1 CP, 10 ms quantum → alternating slices; total
        // wall time ≈ 2 s (within one trailing slice).
        let (end, cpu) = drive(&s, SimTime::ZERO, 1e6, 1);
        let wall = (end - SimTime::ZERO).as_secs_f64();
        assert!((wall - 2.0).abs() < 0.011, "wall = {wall}");
        assert!((cpu.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn three_competitors_quarter_throughput() {
        let s = sched();
        let (end, _) = drive(&s, SimTime::ZERO, 1e6, 3);
        let wall = (end - SimTime::ZERO).as_secs_f64();
        assert!((wall - 4.0).abs() < 0.031, "wall = {wall}");
    }

    #[test]
    fn short_work_after_wake_sees_no_slowdown() {
        // A boosted wake anchors the slice; a sub-quantum burst then runs
        // at (nearly) full speed despite 3 competitors.
        let mut s = sched();
        let t0 = SimTime::from_micros(12_345);
        s.note_reentry(t0, 3);
        let (end, cpu) = drive(&s, t0, 1_000.0, 3); // 1 ms of work
        let wall = (end - t0).as_secs_f64();
        assert!((cpu.as_secs_f64() - 0.001).abs() < 1e-6);
        // Wall = work + bounded wake latency (boost residual + drift).
        assert!(wall < 0.004, "boosted burst took {wall}");
    }

    #[test]
    fn continuous_compute_rows_show_spikes() {
        // Rows measured back-to-back during a long computation: most run
        // clean, but the ones straddling a slice boundary observe a
        // multi-quantum spike — the gethrtime noise of §4.2. The rotated
        // schedule moves the spikes around, so a min over repeats cleans
        // them.
        let s = sched();
        let row_work = 2_000.0; // 2 ms rows
        let mut t = SimTime::ZERO;
        let mut walls = Vec::new();
        for _ in 0..60 {
            let start = t;
            let mut remaining = row_work;
            loop {
                let seg = s.segment(t, 1, None, remaining);
                remaining -= seg.work_done;
                t = seg.end;
                if seg.completed {
                    break;
                }
            }
            walls.push((t - start).as_secs_f64());
        }
        let min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = walls.iter().cloned().fold(0.0, f64::max);
        assert!(
            (min - 0.002).abs() < 1e-4,
            "clean rows near true cost: {min}"
        );
        assert!(max > 0.010, "some rows must spike past a quantum: {max}");
    }

    #[test]
    fn wait_segments_end_at_a_slot() {
        // Wherever a waiting segment starts, it ends within one full
        // round and is followed by runnable time.
        let s = sched();
        let mut saw_wait = false;
        for ms in 0..40u64 {
            let t = SimTime::from_millis(ms);
            let seg = s.segment(t, 1, None, 1.0e9);
            if seg.work_done == 0.0 {
                saw_wait = true;
                assert!(seg.end > t);
                assert!((seg.end - t).as_secs_f64() <= 0.040);
                let next = s.segment(seg.end, 1, None, 1.0e9);
                assert!(next.work_done > 0.0, "slot must follow the wait");
            }
        }
        assert!(saw_wait, "a 1-CP schedule must contain waits");
    }

    #[test]
    fn ncp_change_bounds_segment() {
        let s = sched();
        let change = SimTime::from_millis(5);
        let seg = s.segment(SimTime::ZERO, 0, Some(change), 1e6);
        assert!(!seg.completed);
        assert_eq!(seg.end, change);
        assert!((seg.work_done - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn reentry_boost_moves_slice_up() {
        let mut s = sched();
        // Wake at 25 ms with 3 CPs: strict RR would wait until t = 40 ms
        // (cycle end); with the default 0.9 boost the wait shrinks to
        // ~1.5 ms + drift.
        let t = SimTime::from_millis(25);
        s.note_reentry(t, 3);
        let seg = s.segment(t, 3, None, 1e9);
        let delay = if seg.work_done > 0.0 {
            0.0
        } else {
            (seg.end - t).as_secs_f64()
        };
        assert!(delay < 0.004, "boosted wake delay {delay}");
    }

    #[test]
    fn reentry_soon_after_reentry_runs_quickly() {
        // A wake shortly after a previous wake (still inside the fresh
        // slice) pays at most the small drift.
        let mut s = sched();
        let t = SimTime::from_millis(2);
        s.note_reentry(t, 2);
        let t2 = t + SimDur::from_millis(1);
        s.note_reentry(t2, 2);
        let (end, _) = drive(&s, t2, 500.0, 2);
        assert!((end - t2).as_secs_f64() < 0.002, "{:?}", end - t2);
    }

    #[test]
    fn unloaded_reentry_only_drifts() {
        let mut s = sched();
        s.note_reentry(SimTime::from_millis(7), 0);
        let seg = s.segment(SimTime::from_millis(7), 0, None, 1_000.0);
        assert!(seg.completed);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let s = sched();
        let seg = s.segment(SimTime::from_millis(3), 2, None, 0.0);
        assert!(seg.completed);
        assert_eq!(seg.end, SimTime::from_millis(3));
    }

    /// Drives the integer API to completion and returns (finish, cpu,
    /// slices, steps taken).
    fn drive_ns(
        s: &CpuSched,
        start: SimTime,
        need: SimDur,
        ncp: u32,
        fast: bool,
    ) -> (SimTime, SimDur, u64, u64) {
        let mut t = start;
        let mut left = need;
        let mut cpu = SimDur::ZERO;
        let mut slices = 0;
        let mut steps = 0;
        for _ in 0..10_000_000u64 {
            let st = if fast {
                s.fast_forward(t, ncp, None, left)
            } else {
                s.step_ns(t, ncp, None, left)
            };
            cpu += st.cpu;
            left = left - st.cpu;
            slices += st.slices;
            t = st.end;
            steps += 1;
            if st.completed {
                return (t, cpu, slices, steps);
            }
        }
        panic!("integer step loop did not terminate");
    }

    #[test]
    fn fast_forward_matches_stepped_unbounded() {
        for (salt, ncp, need_ms) in [(0u64, 1u32, 250u64), (7, 3, 1_000), (99, 2, 95)] {
            let mut s = sched();
            s.set_salt(salt);
            let need = SimDur::from_millis(need_ms);
            let stepped = drive_ns(&s, SimTime::from_micros(123), need, ncp, false);
            let fast = drive_ns(&s, SimTime::from_micros(123), need, ncp, true);
            assert_eq!(stepped.0, fast.0, "finish time");
            assert_eq!(stepped.1, fast.1, "cpu time");
            assert_eq!(stepped.2, fast.2, "slice count");
            assert!(fast.3 == 1, "unbounded fast-forward must be O(1)");
            assert!(stepped.3 > 10, "stepped path must actually step");
        }
    }

    #[test]
    fn fast_forward_respects_change_bound() {
        // A change point mid-run: the fast path must stop at the last
        // whole-round slice end before it and agree with stepping.
        let s = sched();
        let need = SimDur::from_millis(500);
        let change = Some(SimTime::from_millis(333));
        let mut t = SimTime::ZERO;
        let mut left = need;
        let mut cpu_stepped = SimDur::ZERO;
        while t < SimTime::from_millis(333) {
            let st = s.step_ns(t, 3, change, left);
            cpu_stepped += st.cpu;
            left = left - st.cpu;
            t = st.end;
            if st.completed {
                break;
            }
        }
        let ff = s.fast_forward(SimTime::ZERO, 3, change, need);
        assert!(!ff.completed);
        assert!(ff.end <= SimTime::from_millis(333));
        // Re-step from the aggregate end to the change point: totals agree.
        let mut t2 = ff.end;
        let mut left2 = need - ff.cpu;
        let mut cpu2 = ff.cpu;
        while t2 < SimTime::from_millis(333) {
            let st = s.step_ns(t2, 3, change, left2);
            cpu2 += st.cpu;
            left2 = left2 - st.cpu;
            t2 = st.end;
            if st.completed {
                break;
            }
        }
        assert_eq!(t2, t);
        assert_eq!(cpu2, cpu_stepped);
    }

    #[test]
    fn step_ns_matches_float_segment_on_dedicated() {
        let s = sched();
        let need = s.work_to_ns(2e6);
        let st = s.step_ns(SimTime::from_secs(1), 0, None, need);
        let seg = s.segment(SimTime::from_secs(1), 0, None, 2e6);
        assert_eq!(st.end, seg.end);
        assert!(st.completed && seg.completed);
        assert_eq!(st.end, SimTime::from_secs(3));
    }

    #[test]
    fn work_to_ns_rounds_up_and_zero_stays_zero() {
        let s = sched(); // speed 1e6 units/s = 1e-3 units/ns
        assert_eq!(s.work_to_ns(0.0), SimDur::ZERO);
        assert_eq!(s.work_to_ns(1.0), SimDur::from_micros(1));
        assert_eq!(s.work_to_ns(1e-9), SimDur(1)); // rounds up, not to 0
    }

    #[test]
    fn fast_forward_script_matches_stepped_across_phases() {
        // A multi-phase load script: the one-call aggregate must land on
        // the same finish time, CPU total, and slice count as stepping
        // slice by slice through every phase.
        let mut tl = NcpTimeline::new();
        tl.set(SimTime::from_millis(40), 2);
        tl.set(SimTime::from_millis(333), 1);
        tl.set(SimTime::from_millis(700), 3);
        tl.set(SimTime::from_secs(2), 0);
        let mut s = sched();
        s.set_salt(42);
        let start = SimTime::from_micros(777);
        let need = SimDur::from_millis(900);
        let mut t = start;
        let mut left = need;
        let mut cpu = SimDur::ZERO;
        let mut slices = 0u64;
        loop {
            let st = s.step_ns(t, tl.at(t), tl.next_change_after(t), left);
            cpu += st.cpu;
            left = left - st.cpu;
            slices += st.slices;
            t = st.end;
            if st.completed {
                break;
            }
        }
        let agg = s.fast_forward_script(start, &tl, need);
        assert!(agg.completed);
        assert_eq!(agg.end, t, "finish time");
        assert_eq!(agg.cpu, cpu, "cpu total");
        assert_eq!(agg.slices, slices, "slice count");
    }

    #[test]
    fn long_run_share_matches_relative_power() {
        let s = sched();
        for ncp in 1..=4u32 {
            let (end, cpu) = drive(&s, SimTime::ZERO, 2e6, ncp);
            let wall = (end - SimTime::ZERO).as_secs_f64();
            let share = cpu.as_secs_f64() / wall;
            let expect = 1.0 / f64::from(ncp + 1);
            assert!(
                (share - expect).abs() < 0.01,
                "ncp={ncp}: share {share} vs {expect}"
            );
        }
    }
}
