//! Indexed per-process mailbox.
//!
//! The seed kept every undelivered envelope in one `Vec` and rescanned it
//! for each receive — O(backlog) per match, which the collective-heavy
//! traffic from the comm layer turns into a real cost. This index keeps one
//! FIFO queue per `(tag, src)` pair, each ordered by `(arrival, seq)`, plus
//! a per-tag set of queue-front keys so:
//!
//! * a directed receive looks at exactly one queue front;
//! * an any-source receive takes the *first* element of the tag's front
//!   set — O(log senders) even past 1024 ranks, where the seed's
//!   range-scan-over-fronts went linear in the sender count;
//! * the matching order — earliest `(arrival, src, seq)` wins — is the
//!   canonical message order of the sharded engine, pinned by the oracle
//!   property test.
//!
//! `BTreeMap`/`BTreeSet` (not hash maps) keep iteration order
//! deterministic, which the bit-reproducibility guarantee of the engine
//! depends on.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::engine::{Envelope, RecvWait};
use crate::time::SimTime;

#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    /// `(tag, src)` → envelopes ordered by `(arrival, seq)`. Keys are
    /// removed when their queue drains.
    queues: BTreeMap<(u64, usize), VecDeque<Envelope>>,
    /// `tag` → the `(arrival, src, seq)` key of every live queue's front
    /// envelope. The set minimum IS the any-source match for that tag.
    fronts: BTreeMap<u64, BTreeSet<(SimTime, usize, u64)>>,
    len: usize,
}

fn front_key(env: &Envelope) -> (SimTime, usize, u64) {
    (env.arrival, env.src, env.seq)
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Undelivered envelopes across all queues (the "mailbox depth" of
    /// the deadlock diagnosis; also used by the oracle tests).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Files an envelope. Per-pair arrivals are monotone for the network
    /// models we ship (per-NIC FIFO), so this is almost always a
    /// `push_back`; the ordered-insert fallback keeps the queue invariant
    /// under any delivery model.
    pub fn push(&mut self, env: Envelope) {
        let tag = env.tag;
        let q = self.queues.entry((tag, env.src)).or_default();
        let old_front = q.front().map(front_key);
        let key = (env.arrival, env.seq);
        match q.back() {
            Some(b) if (b.arrival, b.seq) > key => {
                let at = q.partition_point(|e| (e.arrival, e.seq) <= key);
                q.insert(at, env);
            }
            _ => q.push_back(env),
        }
        let new_front = front_key(q.front().expect("just pushed"));
        if old_front != Some(new_front) {
            let set = self.fronts.entry(tag).or_default();
            if let Some(old) = old_front {
                set.remove(&old);
            }
            set.insert(new_front);
        }
        self.len += 1;
    }

    /// The queue key holding the earliest `(arrival, src, seq)` match for
    /// `wait`, if any.
    fn best_key(&self, wait: RecvWait) -> Option<(u64, usize)> {
        match wait.src {
            Some(s) => {
                let k = (wait.tag, s);
                self.queues.contains_key(&k).then_some(k)
            }
            None => self
                .fronts
                .get(&wait.tag)
                .and_then(|set| set.first())
                .map(|&(_, src, _)| (wait.tag, src)),
        }
    }

    /// Removes and returns the earliest matching envelope whose arrival is
    /// at or before `now` — the seed's `find_ready` + `remove`, in one
    /// O(log n) step.
    pub fn pop_ready(&mut self, wait: RecvWait, now: SimTime) -> Option<Envelope> {
        let key = self.best_key(wait)?;
        let q = self.queues.get_mut(&key).expect("best_key is live");
        if q.front().expect("empty queue left in index").arrival > now {
            return None;
        }
        let env = q.pop_front().expect("front checked above");
        let set = self.fronts.get_mut(&key.0).expect("front set is live");
        set.remove(&front_key(&env));
        match q.front() {
            Some(f) => {
                set.insert(front_key(f));
            }
            None => {
                self.queues.remove(&key);
                if set.is_empty() {
                    self.fronts.remove(&key.0);
                }
            }
        }
        self.len -= 1;
        Some(env)
    }

    /// Earliest arrival (possibly in the future) of any matching envelope
    /// already in flight — the seed's `find_pending`.
    pub fn pending_arrival(&self, wait: RecvWait) -> Option<SimTime> {
        let key = self.best_key(wait)?;
        Some(self.queues[&key].front().expect("live queue").arrival)
    }

    /// Is a matching envelope deliverable at `now`?
    pub fn has_ready(&self, wait: RecvWait, now: SimTime) -> bool {
        self.pending_arrival(wait).is_some_and(|a| a <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    fn env(src: usize, tag: u64, arrival_ms: u64, seq: u64) -> Envelope {
        Envelope {
            src,
            tag,
            sent: SimTime::ZERO,
            arrival: SimTime::from_millis(arrival_ms),
            seq,
            rx_queued: SimDur::ZERO,
            payload: vec![seq as u8],
        }
    }

    #[test]
    fn fifo_by_arrival_then_seq() {
        let mut mb = Mailbox::new();
        mb.push(env(1, 0, 5, 2));
        mb.push(env(1, 0, 5, 1));
        mb.push(env(1, 0, 1, 3));
        let wait = RecvWait {
            src: Some(1),
            tag: 0,
        };
        let now = SimTime::from_millis(10);
        assert_eq!(mb.pop_ready(wait, now).unwrap().seq, 3); // earliest arrival
        assert_eq!(mb.pop_ready(wait, now).unwrap().seq, 1); // seq breaks tie
        assert_eq!(mb.pop_ready(wait, now).unwrap().seq, 2);
        assert_eq!(mb.pop_ready(wait, now), None);
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn pending_reports_future_arrivals() {
        let mut mb = Mailbox::new();
        mb.push(env(1, 0, 8, 1));
        let wait = RecvWait {
            src: Some(1),
            tag: 0,
        };
        assert_eq!(mb.pop_ready(wait, SimTime::from_millis(3)), None);
        assert!(!mb.has_ready(wait, SimTime::from_millis(3)));
        assert_eq!(mb.pending_arrival(wait), Some(SimTime::from_millis(8)));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_takes_global_earliest() {
        let mut mb = Mailbox::new();
        mb.push(env(4, 7, 9, 1));
        mb.push(env(2, 7, 3, 2));
        mb.push(env(9, 8, 1, 3)); // other tag: never matches
        let wait = RecvWait { src: None, tag: 7 };
        let now = SimTime::from_millis(20);
        let e = mb.pop_ready(wait, now).unwrap();
        assert_eq!((e.src, e.seq), (2, 2));
        let e = mb.pop_ready(wait, now).unwrap();
        assert_eq!((e.src, e.seq), (4, 1));
        assert_eq!(mb.pop_ready(wait, now), None);
        assert_eq!(mb.len(), 1); // tag-8 envelope untouched
    }

    #[test]
    fn any_source_tie_breaks_on_src_then_seq() {
        // Seqs are per-sender, so distinct sources can collide on
        // (arrival, seq); the lower source wins — the canonical
        // (arrival, src, seq) order.
        let mut mb = Mailbox::new();
        mb.push(env(5, 3, 4, 1));
        mb.push(env(2, 3, 4, 9));
        let wait = RecvWait { src: None, tag: 3 };
        let now = SimTime::from_millis(10);
        let e = mb.pop_ready(wait, now).unwrap();
        assert_eq!((e.src, e.seq), (2, 9));
        let e = mb.pop_ready(wait, now).unwrap();
        assert_eq!((e.src, e.seq), (5, 1));
    }

    #[test]
    fn tags_demultiplex() {
        let mut mb = Mailbox::new();
        mb.push(env(1, 10, 1, 1));
        mb.push(env(1, 20, 1, 2));
        let now = SimTime::from_millis(5);
        let w20 = RecvWait {
            src: Some(1),
            tag: 20,
        };
        assert_eq!(mb.pop_ready(w20, now).unwrap().seq, 2);
        let w10 = RecvWait {
            src: Some(1),
            tag: 10,
        };
        assert_eq!(mb.pop_ready(w10, now).unwrap().seq, 1);
    }

    #[test]
    fn out_of_order_push_keeps_queue_sorted() {
        let mut mb = Mailbox::new();
        mb.push(env(1, 0, 10, 5));
        mb.push(env(1, 0, 2, 6)); // earlier arrival pushed later
        let wait = RecvWait {
            src: Some(1),
            tag: 0,
        };
        assert_eq!(mb.pending_arrival(wait), Some(SimTime::from_millis(2)));
        assert_eq!(mb.pop_ready(wait, SimTime::from_millis(3)).unwrap().seq, 6);
        assert_eq!(mb.pop_ready(wait, SimTime::from_millis(3)), None); // 10ms still in flight
    }
}

/// Randomized agreement with the seed's linear-scan matching — the oracle
/// the index must never diverge from.
#[cfg(test)]
mod oracle {
    use super::*;
    use crate::time::SimDur;
    use dynmpi_testkit::check_n;

    /// The seed's `find_ready`/`find_pending`, with the canonical
    /// `(arrival, src, seq)` order (seqs are per-sender).
    struct LinearBox(Vec<Envelope>);

    impl LinearBox {
        fn pop_ready(&mut self, wait: RecvWait, now: SimTime) -> Option<Envelope> {
            let i = self
                .0
                .iter()
                .enumerate()
                .filter(|(_, e)| wait.matches(e) && e.arrival <= now)
                .min_by_key(|(_, e)| (e.arrival, e.src, e.seq))
                .map(|(i, _)| i)?;
            Some(self.0.remove(i))
        }

        fn pending_arrival(&self, wait: RecvWait) -> Option<SimTime> {
            self.0
                .iter()
                .filter(|e| wait.matches(e))
                .map(|e| e.arrival)
                .min()
        }
    }

    #[test]
    fn index_matches_linear_scan_oracle() {
        check_n("mailbox_vs_oracle", 300, |rng| {
            let mut mb = Mailbox::new();
            let mut oracle = LinearBox(Vec::new());
            let nsrc = rng.range_usize(1, 6);
            let ntag = rng.range_u64(1, 4);
            // Per-sender program-order sequence numbers, like the engine's.
            let mut seqs = vec![0u64; nsrc];
            for _ in 0..rng.range_u64(0, 60) {
                let op = rng.range_u64(0, 4);
                if op == 0 || mb.len() == 0 {
                    let src = rng.range_usize(0, nsrc);
                    seqs[src] += 1;
                    let e = Envelope {
                        src,
                        tag: rng.range_u64(0, ntag),
                        sent: SimTime::ZERO,
                        // Coarse arrivals so (arrival, src, seq) ties happen.
                        arrival: SimTime::from_millis(rng.range_u64(0, 8)),
                        seq: seqs[src],
                        rx_queued: SimDur::ZERO,
                        payload: vec![],
                    };
                    mb.push(e.clone());
                    oracle.0.push(e);
                } else {
                    let wait = RecvWait {
                        src: rng.chance(0.5).then(|| rng.range_usize(0, nsrc)),
                        tag: rng.range_u64(0, ntag),
                    };
                    let now = SimTime::from_millis(rng.range_u64(0, 10));
                    if op == 1 {
                        assert_eq!(mb.pending_arrival(wait), oracle.pending_arrival(wait));
                    } else {
                        let a = mb.pop_ready(wait, now);
                        let b = oracle.pop_ready(wait, now);
                        assert_eq!(
                            a.as_ref().map(|e| (e.src, e.tag, e.arrival, e.seq)),
                            b.as_ref().map(|e| (e.src, e.tag, e.arrival, e.seq)),
                        );
                    }
                }
                assert_eq!(mb.len(), oracle.0.len());
            }
        });
    }
}
