//! The per-rank simulation handle.
//!
//! A [`SimCtx`] is what a simulated rank's code uses to interact with the
//! virtual cluster: consume CPU, exchange messages, read clocks and load
//! monitors. Every method that takes virtual time may hand the turn to
//! another rank; application code just sees blocking calls.

use std::sync::Arc;

use dynmpi_obs as obs;

use crate::engine::{EngineState, Envelope, RecvWait, Shared, Status};
use crate::monitor;
use crate::sync::MutexGuard;
use crate::time::{SimDur, SimTime};

/// Handle held by one simulated rank.
pub struct SimCtx {
    shared: Arc<Shared>,
    pid: usize,
    nprocs: usize,
}

impl SimCtx {
    pub(crate) fn new(shared: Arc<Shared>, pid: usize, nprocs: usize) -> Self {
        SimCtx {
            shared,
            pid,
            nprocs,
        }
    }

    /// This rank's id (also its process id in the engine).
    pub fn rank(&self) -> usize {
        self.pid
    }

    /// Total ranks in the simulation.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The node this rank runs on (one rank per node).
    pub fn node(&self) -> usize {
        let st = self.shared.state.lock();
        st.procs[self.pid].node
    }

    /// Current virtual time — the `gethrtime` wallclock of §4.2.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().clock
    }

    /// Exact accumulated CPU time of this rank (ground truth; real systems
    /// cannot read this directly).
    pub fn cpu_time_exact(&self) -> SimDur {
        self.shared.state.lock().procs[self.pid].cpu_time
    }

    /// The `/proc` CPU-time *reading*: exact accounting truncated to the
    /// OS accounting tick (10 ms by default), per §4.2.
    pub fn cpu_time_reading(&self) -> SimDur {
        let st = self.shared.state.lock();
        let p = &st.procs[self.pid];
        let tick = st.nodes[p.node].sched.os().proc_tick;
        p.cpu_time.quantize(tick)
    }

    /// A `dmpi_ps` daemon reading for `node` (updated once per second).
    /// A node that is not yet online has no daemon: the reading is 0.
    pub fn dmpi_ps(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        if st.clock < st.nodes[node].online_at {
            return 0;
        }
        monitor::dmpi_ps_reading(&st.nodes[node].timeline, st.clock)
    }

    /// Whether `node` is online (booted/provisioned) at the current
    /// virtual time. Seed nodes are online from t = 0; scripted arrivals
    /// come online at `at + cold_start`.
    pub fn node_online(&self, node: usize) -> bool {
        let st = self.shared.state.lock();
        st.clock >= st.nodes[node].online_at
    }

    /// Virtual time `node` comes online (`SimTime::ZERO` for seed nodes).
    pub fn online_at(&self, node: usize) -> SimTime {
        self.shared.state.lock().nodes[node].online_at
    }

    /// A `vmstat`-style reading for `node` (unreliable: misses an
    /// application blocked at a receive — see §4.2).
    pub fn vmstat(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        monitor::vmstat_reading(&st.nodes[node].timeline, &st.nodes[node].blocks, st.clock)
    }

    /// True competing-process count on `node` right now (oracle for tests
    /// and for scripting; real systems only have the monitors above).
    pub fn true_ncp(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        st.nodes[node].timeline.at(st.clock)
    }

    /// Consumes `work` units of CPU (≈flops). Wall time depends on the
    /// node's speed and current competing load; CPU accounting is charged
    /// for time actually run.
    ///
    /// The remaining work is quantized to nanoseconds once up front
    /// ([`crate::CpuSched::work_to_ns`]) and then advanced in exact integer
    /// steps: one scheduler slice at a time when the engine runs stepped
    /// (`DYNMPI_SIM_STEPPED=1`), or whole load phases at a time through the
    /// closed-form fast-forward otherwise. Both paths produce bit-identical
    /// timestamps and CPU accounting; the fast path just touches the event
    /// queue O(1) times per load phase instead of O(phase/quantum).
    pub fn advance(&self, work: f64) {
        if work <= 0.0 {
            return;
        }
        let mut st = self.shared.state.lock();
        let node = st.procs[self.pid].node;
        let mut need = st.nodes[node].sched.work_to_ns(work);
        let stepped = st.stepped;
        loop {
            let now = st.clock;
            let node = st.procs[self.pid].node;
            let ncp = st.nodes[node].timeline.at(now);
            let next = st.nodes[node].timeline.next_change_after(now);
            let step = if stepped {
                st.nodes[node].sched.step_ns(now, ncp, next, need)
            } else {
                st.nodes[node].sched.fast_forward(now, ncp, next, need)
            };
            if step.cpu > SimDur::ZERO {
                st.procs[self.pid].cpu_time += step.cpu;
                need = need - step.cpu;
            }
            if step.end > now {
                if obs::enabled() {
                    // Scheduler span: this rank ran and/or sat out
                    // competitors' slices from `now` to `step.end` (a
                    // fast-forwarded stretch aggregates many slices into
                    // one span). The `cpu`/`slices` attributes carry the
                    // exact CPU consumed and quantum count, so analyzers
                    // can re-expand aggregated spans: summed attribution
                    // is bit-identical between stepped and fast modes.
                    obs::span_begin("sched", step.kind(now), now.0);
                    obs::span_end_args(
                        step.end.0,
                        vec![
                            ("cpu".to_string(), obs::Json::UInt(step.cpu.0)),
                            ("slices".to_string(), obs::Json::UInt(step.slices)),
                        ],
                    );
                    if step.slices > 0 {
                        obs::count("sim.sched.quanta", step.slices);
                    }
                }
                self.advance_to(&mut st, step.end);
            }
            if step.completed {
                return;
            }
        }
    }

    /// Sleeps for `dur` of virtual time without consuming CPU.
    pub fn sleep(&self, dur: SimDur) {
        if dur == SimDur::ZERO {
            return;
        }
        let mut st = self.shared.state.lock();
        let t = st.clock + dur;
        self.advance_to(&mut st, t);
    }

    /// Sends `payload` to rank `dst` with `tag`. Charges the sender the CPU
    /// cost of the send (which, on a loaded node, includes waiting for a
    /// scheduler slice); delivery time follows the network model. The send
    /// is buffered: it does not wait for the receiver.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        assert!(dst < self.nprocs, "send to invalid rank {dst}");
        let len = payload.len();
        let cpu = {
            let st = self.shared.state.lock();
            let p = st.net.params();
            p.send_cpu_base + p.send_cpu_per_byte * len as f64
        };
        self.advance(cpu);
        let mut st = self.shared.state.lock();
        let now = st.clock;
        let src_node = st.procs[self.pid].node;
        let dst_node = st.procs[dst].node;
        let arrival = st.net.deliver_at(src_node, dst_node, len, now);
        let seq = st.next_seq();
        if obs::enabled() {
            // Message-matching attributes: `seq` is the engine-unique id
            // the matching `comm/recv` instant echoes, letting analyzers
            // link sends to receives across ranks; `queued_ns` is the NIC
            // contention share of this message's flight time.
            obs::instant(
                "comm",
                "send",
                now.0,
                vec![
                    ("peer".to_string(), obs::Json::UInt(dst as u64)),
                    ("tag".to_string(), obs::Json::UInt(tag)),
                    ("seq".to_string(), obs::Json::UInt(seq)),
                    ("bytes".to_string(), obs::Json::UInt(len as u64)),
                    ("arrival_ns".to_string(), obs::Json::UInt(arrival.0)),
                    (
                        "queued_ns".to_string(),
                        obs::Json::UInt(st.net.last_queued().0),
                    ),
                ],
            );
        }
        let env = Envelope {
            src: self.pid,
            tag,
            sent: now,
            arrival,
            seq,
            payload,
        };
        let wake = matches!(st.procs[dst].status, Status::BlockedRecv(w) if w.matches(&env));
        st.procs[self.pid].msgs_sent += 1;
        st.procs[self.pid].bytes_sent += len as u64;
        // Mirrors the ProcState counters exactly, so merged per-rank
        // metrics reconcile with `SimReport` totals integer-for-integer.
        obs::count("sim.msgs_sent", 1);
        obs::count("sim.bytes_sent", len as u64);
        st.procs[dst].mailbox.push(env);
        if wake {
            st.procs[dst].status = Status::Scheduled;
            st.push_event(arrival, dst);
        }
    }

    /// Receives a message from rank `src` with `tag`, blocking in virtual
    /// time until it is available. Charges the receiver the CPU cost of the
    /// receive after arrival.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        self.recv_matching(Some(src), tag).1
    }

    /// Receives a message with `tag` from any rank.
    pub fn recv_any(&self, tag: u64) -> (usize, Vec<u8>) {
        self.recv_matching(None, tag)
    }

    /// Non-blocking probe: is a matching message already deliverable?
    pub fn probe(&self, src: Option<usize>, tag: u64) -> bool {
        let st = self.shared.state.lock();
        st.procs[self.pid]
            .mailbox
            .has_ready(RecvWait { src, tag }, st.clock)
    }

    fn recv_matching(&self, src: Option<usize>, tag: u64) -> (usize, Vec<u8>) {
        let wait = RecvWait { src, tag };
        let mut st = self.shared.state.lock();
        // Virtual time this call first blocked, if it did: lets the pop
        // split the wait into late-sender vs. network shares locally.
        let mut wait_start: Option<u64> = None;
        loop {
            let now = st.clock;
            if let Some(env) = st.procs[self.pid].mailbox.pop_ready(wait, now) {
                let len = env.payload.len();
                st.procs[self.pid].msgs_recvd += 1;
                st.procs[self.pid].bytes_recvd += len as u64;
                obs::count("sim.msgs_recvd", 1);
                obs::count("sim.bytes_recvd", len as u64);
                if obs::enabled() {
                    // Mirror of the sender's `comm/send` instant; a pop at
                    // the exact end of a `sched/blocked` span identifies
                    // the message that resolved that wait. `late_ns` is the
                    // share of this call's blocked time spent before the
                    // sender even posted the message (the classic
                    // late-sender pattern); `net_ns` is the remainder
                    // (network flight + NIC queueing). Both are computed
                    // receiver-locally from the envelope's `sent` stamp, so
                    // they are independent of cross-rank event order.
                    let (late_ns, net_ns) = match wait_start {
                        Some(ws) => {
                            let total = now.0 - ws;
                            let late = env.sent.0.clamp(ws, now.0) - ws;
                            (late, total - late)
                        }
                        None => (0, 0),
                    };
                    obs::instant(
                        "comm",
                        "recv",
                        now.0,
                        vec![
                            ("peer".to_string(), obs::Json::UInt(env.src as u64)),
                            ("tag".to_string(), obs::Json::UInt(env.tag)),
                            ("seq".to_string(), obs::Json::UInt(env.seq)),
                            ("bytes".to_string(), obs::Json::UInt(len as u64)),
                            ("arrival_ns".to_string(), obs::Json::UInt(env.arrival.0)),
                            ("late_ns".to_string(), obs::Json::UInt(late_ns)),
                            ("net_ns".to_string(), obs::Json::UInt(net_ns)),
                        ],
                    );
                }
                let p = st.net.params();
                let cpu = p.recv_cpu_base + p.recv_cpu_per_byte * len as f64;
                drop(st);
                self.advance(cpu);
                return (env.src, env.payload);
            }
            // Not deliverable yet: block (this is what `vmstat` misses).
            wait_start.get_or_insert(now.0);
            obs::span_begin("sched", "blocked", now.0);
            let node = st.procs[self.pid].node;
            st.nodes[node].blocks.block(now);
            if let Some(arrival) = st.procs[self.pid].mailbox.pending_arrival(wait) {
                // Arrival already determined by the network: sleep to it
                // (same-rank continuation if no earlier event intervenes).
                self.advance_to(&mut st, arrival);
            } else {
                // Unknown: the sender will wake us.
                st.procs[self.pid].status = Status::BlockedRecv(wait);
                self.yield_turn(&mut st);
            }
            let wake = st.clock;
            obs::span_end(wake.0);
            let node = st.procs[self.pid].node;
            st.nodes[node].blocks.unblock(wake);
            let ncp = st.nodes[node].timeline.at(wake);
            st.nodes[node].sched.note_reentry(wake, ncp);
        }
    }

    /// Reports that this rank completed one application phase cycle; fires
    /// any cycle-triggered load-script events for this node.
    pub fn phase_cycle_completed(&self) {
        let mut st = self.shared.state.lock();
        let clock = st.clock;
        let node = st.procs[self.pid].node;
        let n = &mut st.nodes[node];
        n.cycle_count += 1;
        let c = n.cycle_count;
        while let Some(&(ev_c, ncp)) = n.cycle_events.first() {
            if ev_c <= c {
                n.timeline.set(clock, ncp);
                n.cycle_events.remove(0);
            } else {
                break;
            }
        }
    }

    /// Phase cycles completed on this rank's node.
    pub fn phase_cycles(&self) -> u64 {
        let st = self.shared.state.lock();
        let node = st.procs[self.pid].node;
        st.nodes[node].cycle_count
    }

    /// Directly sets the competing-process count on this rank's own node
    /// (for harnesses that drive load programmatically rather than through
    /// a pre-registered script).
    pub fn set_own_ncp(&self, ncp: u32) {
        let mut st = self.shared.state.lock();
        let clock = st.clock;
        let node = st.procs[self.pid].node;
        st.nodes[node].timeline.set(clock, ncp);
    }

    /// Advances the virtual clock to `t` on behalf of this (running) rank.
    ///
    /// Turn-handoff bypass: if no *other* rank has a live event at or
    /// before `t`, this rank keeps the turn — the clock moves forward
    /// in place with no heap push, no `notify`, and no condvar wait, so a
    /// pure-compute stretch costs zero engine events. Otherwise it falls
    /// back to the classic queued event + full yield, preserving the
    /// global `(time, seq)` dispatch order exactly.
    fn advance_to(&self, st: &mut MutexGuard<'_, EngineState>, t: SimTime) {
        debug_assert_eq!(st.current, Some(self.pid));
        debug_assert!(t >= st.clock, "advance_to into the past");
        // Stepped mode keeps the seed's exact execution strategy — every
        // advance goes through the heap and a full turn handoff — so it
        // doubles as the before-side cost baseline for `engine_events`.
        if !st.stepped {
            st.prune_stale_heads();
            // Strict `>`: an existing event at exactly `t` carries a lower
            // sequence number than the event we would push, so it must
            // dispatch first.
            if st.queue.peek().is_none_or(|ev| ev.time > t) {
                st.clock = t;
                st.bypasses += 1;
                return;
            }
        }
        st.procs[self.pid].status = Status::Scheduled;
        st.push_event(t, self.pid);
        self.yield_turn(st);
    }

    /// Hands the turn to the next event's owner and waits until this rank
    /// is scheduled again. The caller must have arranged its own wake-up
    /// (queued event or blocked-recv registration) before calling.
    fn yield_turn(&self, st: &mut MutexGuard<'_, EngineState>) {
        st.dispatch_next();
        if st.current == Some(self.pid) {
            // The turn came straight back (our own event was earliest):
            // keep running without waking the other threads.
            debug_assert_eq!(st.procs[self.pid].status, Status::Running);
            return;
        }
        self.shared.cv.notify_all();
        loop {
            if let Some(msg) = st.panic_msg.clone() {
                panic!("{msg}");
            }
            if st.current == Some(self.pid) {
                debug_assert_eq!(st.procs[self.pid].status, Status::Running);
                return;
            }
            self.shared.cv.wait(st);
        }
    }

    /// Marks this rank finished and hands the turn onward. Called by the
    /// cluster runner after the rank's program returns.
    pub(crate) fn finish(&self) {
        let mut st = self.shared.state.lock();
        let clock = st.clock;
        st.procs[self.pid].status = Status::Finished;
        st.procs[self.pid].finish_time = clock;
        st.live -= 1;
        st.dispatch_next();
        self.shared.cv.notify_all();
    }
}
