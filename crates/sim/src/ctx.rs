//! The per-rank simulation handle.
//!
//! A [`SimCtx`] is what a simulated rank's code uses to interact with the
//! virtual cluster: consume CPU, exchange messages, read clocks and load
//! monitors. Every method that takes virtual time may hand the turn to
//! another rank; application code just sees blocking calls.
//!
//! Sharded runs share almost every code path with single-shard runs; the
//! differences are confined to three points, each chosen so virtual-time
//! behavior is bit-identical across shard counts:
//!
//! * cross-node sends queue in the shard outbox instead of landing
//!   eagerly (the coordinator applies them in the canonical
//!   `(sent, src, seq)` order — exactly the single-shard delivery order);
//! * remote monitor reads go through the shared [`crate::shard::MonBoard`];
//! * the turn token reports quiescence to the window coordinator when the
//!   local queue drains up to `window_end`.

use std::sync::Arc;

use dynmpi_obs as obs;

use crate::engine::{EngineState, Envelope, RecvWait, Shared, Status};
use crate::monitor;
use crate::shard::OutMsg;
use crate::sync::MutexGuard;
use crate::time::{SimDur, SimTime};

/// Error returned by [`SimCtx::recv_timeout`]: no matching message became
/// deliverable within the timeout window. Carries the receive's match
/// criteria so callers can report *which* peer went silent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvTimeout {
    /// The source the receive was directed at (`None` = any source).
    pub src: Option<usize>,
    /// The tag the receive was matching.
    pub tag: u64,
}

/// Unwind payload of a rank killed by a scripted fail-stop crash. The
/// cluster runner downcasts panic payloads to this marker to tell a
/// simulated death (expected: record and continue) from a real panic
/// (poison the whole run).
pub(crate) struct CrashedRank;

/// Handle held by one simulated rank.
pub struct SimCtx {
    shared: Arc<Shared>,
    pid: usize,
    nprocs: usize,
}

impl SimCtx {
    pub(crate) fn new(shared: Arc<Shared>, pid: usize, nprocs: usize) -> Self {
        SimCtx {
            shared,
            pid,
            nprocs,
        }
    }

    /// Is this rank's node fail-stop-dead at the current clock? Checked at
    /// *operation boundaries* only — entry of compute/sleep/send/cycle ops
    /// and each turn of a receive loop — never inside an `advance`, so the
    /// fast and stepped engines charge bit-identical CPU before the death.
    fn crash_due(&self, st: &EngineState) -> bool {
        let node = st.procs[self.pid].node;
        st.failstop_at(node).is_some_and(|c| st.clock >= c)
    }

    /// Kills this rank at the current clock: marks it [`Status::Crashed`]
    /// (dead for dispatch, reported separately from `Finished`), hands the
    /// turn onward, and unwinds with the [`CrashedRank`] marker the cluster
    /// runner catches. The `sim/crashed` trace instant is what lets the
    /// health monitor treat the node's ensuing silence as permanent.
    fn die_crashed(&self, mut st: MutexGuard<'_, EngineState>) -> ! {
        let clock = st.clock;
        if obs::enabled() {
            let node = st.procs[self.pid].node;
            obs::instant(
                "sim",
                "crashed",
                clock.0,
                vec![("node".to_string(), obs::Json::UInt(node as u64))],
            );
        }
        st.procs[self.pid].status = Status::Crashed;
        st.procs[self.pid].finish_time = clock;
        st.live -= 1;
        st.dispatch_or_quiesce();
        self.shared.cv.notify_all();
        drop(st);
        std::panic::resume_unwind(Box::new(CrashedRank));
    }

    /// This rank's id (also its process id in the engine).
    pub fn rank(&self) -> usize {
        self.pid
    }

    /// Total ranks in the simulation.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The node this rank runs on (one rank per node).
    pub fn node(&self) -> usize {
        let st = self.shared.state.lock();
        st.procs[self.pid].node
    }

    /// Current virtual time — the `gethrtime` wallclock of §4.2.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().clock
    }

    /// Exact accumulated CPU time of this rank (ground truth; real systems
    /// cannot read this directly).
    pub fn cpu_time_exact(&self) -> SimDur {
        self.shared.state.lock().procs[self.pid].cpu_time
    }

    /// The `/proc` CPU-time *reading*: exact accounting truncated to the
    /// OS accounting tick (10 ms by default), per §4.2.
    pub fn cpu_time_reading(&self) -> SimDur {
        let st = self.shared.state.lock();
        let p = &st.procs[self.pid];
        let tick = st.nodes[p.node].sched.os().proc_tick;
        p.cpu_time.quantize(tick)
    }

    /// A `dmpi_ps` daemon reading for `node` (updated once per second).
    /// A node that is not yet online has no daemon: the reading is 0.
    ///
    /// Reading a *remote* node's daemon observes the report as of one
    /// network latency ago — the publication had to cross the wire. (This
    /// is also what lets a sharded engine serve remote readings from data
    /// at least one lookahead window old, race-free.) A rank reading its
    /// own node sees the current second's report.
    pub fn dmpi_ps(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        if st.clock < st.nodes[node].online_at {
            return 0;
        }
        if st.procs[self.pid].node == node {
            return monitor::dmpi_ps_reading(&st.nodes[node].timeline, st.clock);
        }
        let sample = monitor::monitor_sample_time(st.clock, st.net.params().latency);
        if st.nic_dead_at(node, sample) {
            // The daemon's report cannot cross a dead NIC: a crashed or
            // partitioned node reads as silent remotely (its own rank, if
            // still running, sees itself normally above).
            return 0;
        }
        if st.nic_dead_at(st.procs[self.pid].node, sample) {
            // Symmetric: a partitioned *reader* cannot receive anyone's
            // report either — every remote node looks silent to it.
            return 0;
        }
        match &st.board {
            Some(board) => monitor::dmpi_ps_reading_at(&board.nodes[node].lock().timeline, sample),
            None => monitor::dmpi_ps_reading_at(&st.nodes[node].timeline, sample),
        }
    }

    /// Whether `node` is online (booted/provisioned) at the current
    /// virtual time. Seed nodes are online from t = 0; scripted arrivals
    /// come online at `at + cold_start`.
    pub fn node_online(&self, node: usize) -> bool {
        let st = self.shared.state.lock();
        st.clock >= st.nodes[node].online_at
    }

    /// Virtual time `node` comes online (`SimTime::ZERO` for seed nodes).
    pub fn online_at(&self, node: usize) -> SimTime {
        self.shared.state.lock().nodes[node].online_at
    }

    /// A `vmstat`-style reading for `node` (unreliable: misses an
    /// application blocked at a receive — see §4.2). Remote readings lag
    /// one network latency, like [`Self::dmpi_ps`].
    pub fn vmstat(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        if st.procs[self.pid].node == node {
            return monitor::vmstat_reading(
                &st.nodes[node].timeline,
                &st.nodes[node].blocks,
                st.clock,
            );
        }
        let sample = monitor::monitor_sample_time(st.clock, st.net.params().latency);
        if st.nic_dead_at(node, sample) {
            return 0;
        }
        match &st.board {
            Some(board) => {
                let m = board.nodes[node].lock();
                monitor::vmstat_reading_at(&m.timeline, &m.blocks, sample)
            }
            None => {
                monitor::vmstat_reading_at(&st.nodes[node].timeline, &st.nodes[node].blocks, sample)
            }
        }
    }

    /// True competing-process count on `node` right now (oracle for tests
    /// and for scripting; real systems only have the monitors above). In a
    /// sharded run a remote node's reading reflects pre-scripted changes
    /// only — use the monitors for anything a real system would sense.
    pub fn true_ncp(&self, node: usize) -> u32 {
        let st = self.shared.state.lock();
        st.nodes[node].timeline.at(st.clock)
    }

    /// Consumes `work` units of CPU (≈flops). Wall time depends on the
    /// node's speed and current competing load; CPU accounting is charged
    /// for time actually run.
    ///
    /// The remaining work is quantized to nanoseconds once up front
    /// ([`crate::CpuSched::work_to_ns`]) and then advanced in exact integer
    /// steps: one scheduler slice at a time when the engine runs stepped
    /// (`DYNMPI_SIM_STEPPED=1`), or the whole load-script stretch in one
    /// closed-form call otherwise. Both paths produce bit-identical
    /// timestamps and CPU accounting; the fast path touches the event
    /// queue once per `advance` instead of O(stretch/quantum) times.
    pub fn advance(&self, work: f64) {
        if work <= 0.0 {
            return;
        }
        let mut st = self.shared.state.lock();
        if self.crash_due(&st) {
            self.die_crashed(st);
        }
        let node = st.procs[self.pid].node;
        let need = st.nodes[node].sched.work_to_ns(work);
        if !st.stepped {
            let now = st.clock;
            let n = &st.nodes[node];
            let step = n.sched.fast_forward_script(now, &n.timeline, need);
            if step.cpu > SimDur::ZERO {
                st.procs[self.pid].cpu_time += step.cpu;
            }
            if step.end > now {
                if obs::enabled() {
                    // Scheduler span: this rank ran and/or sat out
                    // competitors' slices from `now` to `step.end` — the
                    // whole multi-phase stretch as one span. The
                    // `cpu`/`slices` attributes carry the exact CPU
                    // consumed and quantum count, so analyzers can
                    // re-expand aggregated spans: summed attribution is
                    // bit-identical between stepped and fast modes.
                    obs::span_begin("sched", step.kind(now), now.0);
                    obs::span_end_args(
                        step.end.0,
                        vec![
                            ("cpu".to_string(), obs::Json::UInt(step.cpu.0)),
                            ("slices".to_string(), obs::Json::UInt(step.slices)),
                        ],
                    );
                    if step.slices > 0 {
                        obs::count("sim.sched.quanta", step.slices);
                    }
                }
                self.advance_to(&mut st, step.end);
            }
            return;
        }
        // Stepped reference path: one scheduler slice per engine event.
        let mut need = need;
        loop {
            let now = st.clock;
            let node = st.procs[self.pid].node;
            let ncp = st.nodes[node].timeline.at(now);
            let next = st.nodes[node].timeline.next_change_after(now);
            let step = st.nodes[node].sched.step_ns(now, ncp, next, need);
            if step.cpu > SimDur::ZERO {
                st.procs[self.pid].cpu_time += step.cpu;
                need = need - step.cpu;
            }
            if step.end > now {
                if obs::enabled() {
                    obs::span_begin("sched", step.kind(now), now.0);
                    obs::span_end_args(
                        step.end.0,
                        vec![
                            ("cpu".to_string(), obs::Json::UInt(step.cpu.0)),
                            ("slices".to_string(), obs::Json::UInt(step.slices)),
                        ],
                    );
                    if step.slices > 0 {
                        obs::count("sim.sched.quanta", step.slices);
                    }
                }
                self.advance_to(&mut st, step.end);
            }
            if step.completed {
                return;
            }
        }
    }

    /// Sleeps for `dur` of virtual time without consuming CPU.
    pub fn sleep(&self, dur: SimDur) {
        if dur == SimDur::ZERO {
            return;
        }
        let mut st = self.shared.state.lock();
        if self.crash_due(&st) {
            self.die_crashed(st);
        }
        let t = st.clock + dur;
        self.advance_to(&mut st, t);
    }

    /// Sends `payload` to rank `dst` with `tag`. Charges the sender the CPU
    /// cost of the send (which, on a loaded node, includes waiting for a
    /// scheduler slice); delivery time follows the network model. The send
    /// is buffered: it does not wait for the receiver.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        assert!(dst < self.nprocs, "send to invalid rank {dst}");
        let len = payload.len();
        let cpu = {
            let st = self.shared.state.lock();
            if self.crash_due(&st) {
                self.die_crashed(st);
            }
            let p = st.net.params();
            p.send_cpu_base + p.send_cpu_per_byte * len as f64
        };
        self.advance(cpu);
        let mut st = self.shared.state.lock();
        let now = st.clock;
        let src_node = st.procs[self.pid].node;
        let dst_node = st.procs[dst].node;
        st.procs[self.pid].send_seq += 1;
        let seq = st.procs[self.pid].send_seq;
        st.procs[self.pid].msgs_sent += 1;
        st.procs[self.pid].bytes_sent += len as u64;
        // Mirrors the ProcState counters exactly, so merged per-rank
        // metrics reconcile with `SimReport` totals integer-for-integer.
        obs::count("sim.msgs_sent", 1);
        obs::count("sim.bytes_sent", len as u64);
        let emit = |queued: SimDur| {
            if obs::enabled() {
                // Message-matching attributes: `seq` is the sender-local
                // program-order id the matching `comm/recv` instant echoes
                // (with `peer` = the sender), letting analyzers link sends
                // to receives across ranks; `queued_ns` is the send-side
                // NIC contention share of this message's flight time (the
                // receive-side share rides on the `comm/recv` instant —
                // a sharded engine doesn't know it yet at send time).
                obs::instant(
                    "comm",
                    "send",
                    now.0,
                    vec![
                        ("peer".to_string(), obs::Json::UInt(dst as u64)),
                        ("tag".to_string(), obs::Json::UInt(tag)),
                        ("seq".to_string(), obs::Json::UInt(seq)),
                        ("bytes".to_string(), obs::Json::UInt(len as u64)),
                        ("queued_ns".to_string(), obs::Json::UInt(queued.0)),
                    ],
                );
            }
        };
        if src_node == dst_node {
            // Same-node delivery: the copy engine is owner-local state, so
            // it stays eager in every mode.
            let (arrival, queued) = st.net.deliver_self(src_node, len, now);
            emit(queued);
            st.deliver(
                dst,
                Envelope {
                    src: self.pid,
                    tag,
                    sent: now,
                    arrival,
                    seq,
                    rx_queued: SimDur::ZERO,
                    payload,
                },
            );
            return;
        }
        let tx = st.net.tx_depart(src_node, len, now);
        emit(tx.queued);
        let env = Envelope {
            src: self.pid,
            tag,
            sent: now,
            arrival: SimTime::ZERO, // set by the RX half
            seq,
            rx_queued: SimDur::ZERO,
            payload,
        };
        if st.sharded() {
            // The RX half runs on the destination shard when the
            // coordinator applies the window's messages in canonical
            // order. (Same-shard messages too: landing them eagerly here
            // would update the destination NIC out of that order.)
            st.outbox.push(OutMsg {
                env,
                dst,
                dst_node,
                bytes: len,
                rx_ready: tx.rx_ready,
                tx_end: tx.tx_end,
            });
        } else {
            let (arrival, rx_queued) = st.net.rx_land(dst_node, len, tx.rx_ready, tx.tx_end);
            st.deliver(
                dst,
                Envelope {
                    arrival,
                    rx_queued,
                    ..env
                },
            );
        }
    }

    /// Receives a message from rank `src` with `tag`, blocking in virtual
    /// time until it is available. Charges the receiver the CPU cost of the
    /// receive after arrival.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        self.recv_matching(Some(src), tag).1
    }

    /// Receives a message with `tag` from any rank.
    pub fn recv_any(&self, tag: u64) -> (usize, Vec<u8>) {
        self.recv_matching(None, tag)
    }

    /// Receives like [`Self::recv`]/[`Self::recv_any`] but gives up after
    /// `timeout` of virtual time: if no matching message is deliverable by
    /// `entry + timeout`, returns `Err(`[`RecvTimeout`]`)` instead of
    /// blocking forever — the primitive failure detection is built on. A
    /// message arriving *exactly* at the deadline is delivered (the
    /// mailbox is checked before the deadline fires), so the deadline is
    /// exclusive of message wins and identical in every engine mode. The
    /// timeout path charges no CPU; the success path charges the usual
    /// receive cost.
    pub fn recv_timeout(
        &self,
        src: Option<usize>,
        tag: u64,
        timeout: SimDur,
    ) -> Result<(usize, Vec<u8>), RecvTimeout> {
        self.recv_inner(src, tag, Some(timeout))
    }

    /// Non-blocking probe: is a matching message already deliverable?
    /// Exact in every mode: a message with arrival ≤ now was sent in a
    /// window that closed at or before that arrival, so a sharded engine
    /// has already applied it.
    pub fn probe(&self, src: Option<usize>, tag: u64) -> bool {
        let st = self.shared.state.lock();
        st.procs[self.pid]
            .mailbox
            .has_ready(RecvWait { src, tag }, st.clock)
    }

    fn recv_matching(&self, src: Option<usize>, tag: u64) -> (usize, Vec<u8>) {
        match self.recv_inner(src, tag, None) {
            Ok(r) => r,
            Err(_) => unreachable!("recv without a deadline cannot time out"),
        }
    }

    fn recv_inner(
        &self,
        src: Option<usize>,
        tag: u64,
        timeout: Option<SimDur>,
    ) -> Result<(usize, Vec<u8>), RecvTimeout> {
        let wait = RecvWait { src, tag };
        let mut st = self.shared.state.lock();
        let deadline = timeout.map(|d| st.clock + d);
        // Virtual time this call first blocked, if it did: lets the pop
        // split the wait into late-sender vs. network shares locally.
        let mut wait_start: Option<u64> = None;
        loop {
            // Each loop turn is an operation boundary: a rank woken at its
            // node's crash time dies here instead of popping the message.
            if self.crash_due(&st) {
                self.die_crashed(st);
            }
            let now = st.clock;
            if let Some(env) = st.procs[self.pid].mailbox.pop_ready(wait, now) {
                let len = env.payload.len();
                st.procs[self.pid].msgs_recvd += 1;
                st.procs[self.pid].bytes_recvd += len as u64;
                obs::count("sim.msgs_recvd", 1);
                obs::count("sim.bytes_recvd", len as u64);
                if obs::enabled() {
                    // Mirror of the sender's `comm/send` instant; a pop at
                    // the exact end of a `sched/blocked` span identifies
                    // the message that resolved that wait. `late_ns` is the
                    // share of this call's blocked time spent before the
                    // sender even posted the message (the classic
                    // late-sender pattern); `net_ns` is the remainder
                    // (network flight + NIC queueing). Both are computed
                    // receiver-locally from the envelope's `sent` stamp, so
                    // they are independent of cross-rank event order.
                    // `rx_queued_ns` is the RX-NIC contention this frame
                    // paid — the receive-side twin of the send instant's
                    // `queued_ns`.
                    let (late_ns, net_ns) = match wait_start {
                        Some(ws) => {
                            let total = now.0 - ws;
                            let late = env.sent.0.clamp(ws, now.0) - ws;
                            (late, total - late)
                        }
                        None => (0, 0),
                    };
                    obs::instant(
                        "comm",
                        "recv",
                        now.0,
                        vec![
                            ("peer".to_string(), obs::Json::UInt(env.src as u64)),
                            ("tag".to_string(), obs::Json::UInt(env.tag)),
                            ("seq".to_string(), obs::Json::UInt(env.seq)),
                            ("bytes".to_string(), obs::Json::UInt(len as u64)),
                            ("rx_queued_ns".to_string(), obs::Json::UInt(env.rx_queued.0)),
                            ("late_ns".to_string(), obs::Json::UInt(late_ns)),
                            ("net_ns".to_string(), obs::Json::UInt(net_ns)),
                        ],
                    );
                }
                let p = st.net.params();
                let cpu = p.recv_cpu_base + p.recv_cpu_per_byte * len as f64;
                drop(st);
                self.advance(cpu);
                return Ok((env.src, env.payload));
            }
            if let Some(d) = deadline {
                if now >= d {
                    if obs::enabled() {
                        obs::instant(
                            "comm",
                            "recv-timeout",
                            now.0,
                            vec![
                                (
                                    "src".to_string(),
                                    match src {
                                        Some(s) => obs::Json::UInt(s as u64),
                                        None => obs::Json::Str("any".to_string()),
                                    },
                                ),
                                ("tag".to_string(), obs::Json::UInt(tag)),
                                (
                                    "waited_ns".to_string(),
                                    obs::Json::UInt(now.0 - wait_start.unwrap_or(now.0)),
                                ),
                            ],
                        );
                    }
                    return Err(RecvTimeout { src, tag });
                }
            }
            // Not deliverable yet: block (this is what `vmstat` misses).
            wait_start.get_or_insert(now.0);
            obs::span_begin("sched", "blocked", now.0);
            let node = st.procs[self.pid].node;
            st.nodes[node].blocks.block(now);
            if let Some(board) = &st.board {
                board.nodes[node].lock().blocks.block(now);
            }
            // Register as blocked and queue a wake-up hint at the earliest
            // known matching arrival (if the network already determined
            // one). Every later matching delivery queues its own wake-up,
            // so the earliest candidate dispatches — in a sharded run a
            // cross-shard message can undercut the local hint, and this is
            // also the single-shard behavior, keeping wake times identical
            // across shard counts.
            st.procs[self.pid].status = Status::BlockedRecv(wait);
            if let Some(arrival) = st.procs[self.pid].mailbox.pending_arrival(wait) {
                st.push_event(arrival, self.pid);
            }
            if let Some(d) = deadline {
                st.push_event(d, self.pid);
            }
            // A rank blocked on a receive that will never match still has
            // to die at its node's crash time: queue that wake-up too (the
            // loop head turns it into the death). Duplicate pushes across
            // blocks are harmless — stale epochs are pruned.
            if let Some(c) = st.failstop_at(node) {
                st.push_event(c, self.pid);
            }
            self.yield_turn(&mut st);
            let wake = st.clock;
            obs::span_end(wake.0);
            let node = st.procs[self.pid].node;
            st.nodes[node].blocks.unblock(wake);
            if let Some(board) = &st.board {
                board.nodes[node].lock().blocks.unblock(wake);
            }
            let ncp = st.nodes[node].timeline.at(wake);
            st.nodes[node].sched.note_reentry(wake, ncp);
        }
    }

    /// Reports that this rank completed one application phase cycle; fires
    /// any cycle-triggered load-script events for this node.
    pub fn phase_cycle_completed(&self) {
        let mut st = self.shared.state.lock();
        if self.crash_due(&st) {
            self.die_crashed(st);
        }
        let clock = st.clock;
        let node = st.procs[self.pid].node;
        let mut fired = false;
        let n = &mut st.nodes[node];
        n.cycle_count += 1;
        let c = n.cycle_count;
        while let Some(&(ev_c, ncp)) = n.cycle_events.first() {
            if ev_c <= c {
                n.timeline.set(clock, ncp);
                n.cycle_events.remove(0);
                fired = true;
            } else {
                break;
            }
        }
        if fired {
            let ncp = st.nodes[node].timeline.at(clock);
            if let Some(board) = &st.board {
                board.nodes[node].lock().timeline.set(clock, ncp);
            }
        }
    }

    /// Phase cycles completed on this rank's node.
    pub fn phase_cycles(&self) -> u64 {
        let st = self.shared.state.lock();
        let node = st.procs[self.pid].node;
        st.nodes[node].cycle_count
    }

    /// Directly sets the competing-process count on this rank's own node
    /// (for harnesses that drive load programmatically rather than through
    /// a pre-registered script).
    pub fn set_own_ncp(&self, ncp: u32) {
        let mut st = self.shared.state.lock();
        let clock = st.clock;
        let node = st.procs[self.pid].node;
        st.nodes[node].timeline.set(clock, ncp);
        if let Some(board) = &st.board {
            board.nodes[node].lock().timeline.set(clock, ncp);
        }
    }

    /// Advances the virtual clock to `t` on behalf of this (running) rank.
    ///
    /// Turn-handoff bypass: if `t` is inside the current window and no
    /// *other* rank has a live event at or before `t`, this rank keeps the
    /// turn — the clock moves forward in place with no heap push, no
    /// `notify`, and no condvar wait, so a pure-compute stretch costs zero
    /// engine events. Otherwise it falls back to the classic queued event +
    /// full yield, preserving the global `(time, pid, seq)` dispatch order
    /// exactly. (The window bound is strict: a running rank's clock stays
    /// below `window_end`, which is what makes remote monitor samples at
    /// `now − latency` settled at the barrier.)
    fn advance_to(&self, st: &mut MutexGuard<'_, EngineState>, t: SimTime) {
        debug_assert_eq!(st.current, Some(self.pid));
        debug_assert!(t >= st.clock, "advance_to into the past");
        // Stepped mode keeps the seed's exact execution strategy — every
        // advance goes through the queue and a full turn handoff — so it
        // doubles as the before-side cost baseline for `engine_events`.
        if !st.stepped && t < st.window_end {
            st.prune_stale_heads();
            // Strict `>`: an existing event at exactly `t` may carry a
            // lower (pid, seq) than the event we would push, so it must
            // dispatch first.
            if st.queue.peek().is_none_or(|ev| ev.time > t) {
                st.clock = t;
                st.bypasses += 1;
                return;
            }
        }
        st.procs[self.pid].status = Status::Scheduled;
        st.push_event(t, self.pid);
        self.yield_turn(st);
    }

    /// Hands the turn to the next event's owner and waits until this rank
    /// is scheduled again. The caller must have arranged its own wake-up
    /// (queued event or blocked-recv registration) before calling.
    fn yield_turn(&self, st: &mut MutexGuard<'_, EngineState>) {
        st.dispatch_or_quiesce();
        if st.current == Some(self.pid) {
            // The turn came straight back (our own event was earliest):
            // keep running without waking the other threads.
            debug_assert_eq!(st.procs[self.pid].status, Status::Running);
            return;
        }
        self.shared.cv.notify_all();
        loop {
            if let Some(msg) = st.panic_msg.clone() {
                panic!("{msg}");
            }
            if st.current == Some(self.pid) {
                debug_assert_eq!(st.procs[self.pid].status, Status::Running);
                return;
            }
            self.shared.cv.wait(st);
        }
    }

    /// Marks this rank finished and hands the turn onward. Called by the
    /// cluster runner after the rank's program returns.
    pub(crate) fn finish(&self) {
        let mut st = self.shared.state.lock();
        let clock = st.clock;
        st.procs[self.pid].status = Status::Finished;
        st.procs[self.pid].finish_time = clock;
        st.live -= 1;
        st.dispatch_or_quiesce();
        self.shared.cv.notify_all();
    }
}
