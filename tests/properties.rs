//! Property-based tests on the core invariants, driven by the seeded
//! `dynmpi_testkit` harness: each property runs over many generated cases
//! and failures report the reproducing seed.

use dynmpi::{
    partition_rows, relative_power, successive_balance, successive_balance_with_floor, CommModel,
    Distribution, Drsd, NodeLoad, RowSet,
};
use dynmpi_testkit::{check, Rng};

fn gen_rowset(rng: &mut Rng) -> RowSet {
    let pairs = rng.vec_in(0, 12, |r| (r.range_usize(0, 200), r.range_usize(1, 20)));
    RowSet::from_ranges(pairs.into_iter().map(|(s, l)| s..s + l))
}

// ---------------- RowSet algebra ----------------------------------

#[test]
fn rowset_union_contains_both() {
    check("rowset_union_contains_both", |rng| {
        let a = gen_rowset(rng);
        let b = gen_rowset(rng);
        let u = a.union(&b);
        for r in a.iter().chain(b.iter()) {
            assert!(u.contains(r));
        }
        assert_eq!(
            u.len(),
            a.iter()
                .chain(b.iter())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    });
}

#[test]
fn rowset_diff_intersect_partition() {
    check("rowset_diff_intersect_partition", |rng| {
        let a = gen_rowset(rng);
        let b = gen_rowset(rng);
        // a = (a \ b) ⊎ (a ∩ b), disjointly.
        let d = a.diff(&b);
        let i = a.intersect(&b);
        assert_eq!(d.len() + i.len(), a.len());
        assert!(d.intersect(&i).is_empty());
        assert_eq!(d.union(&i), a.clone());
        // Nothing in the difference is in b.
        for r in d.iter() {
            assert!(!b.contains(r));
        }
    });
}

#[test]
fn rowset_ranges_sorted_disjoint() {
    check("rowset_ranges_sorted_disjoint", |rng| {
        let a = gen_rowset(rng);
        let rs = a.ranges();
        for w in rs.windows(2) {
            assert!(
                w[0].end < w[1].start,
                "ranges must be disjoint, non-adjacent"
            );
        }
    });
}

// ---------------- distributions -----------------------------------

#[test]
fn block_weights_partition_rows() {
    check("block_weights_partition_rows", |rng| {
        let nrows = rng.range_usize(1, 500);
        let weights = rng.vec_in(1, 9, |r| r.range_f64(0.0, 10.0));
        if weights.iter().sum::<f64>() <= 0.0 {
            return;
        }
        let d = Distribution::block_from_weights(nrows, &weights, 0);
        assert_eq!(d.counts().iter().sum::<usize>(), nrows);
        // Every row has exactly one owner, consistent with rows_of.
        for row in 0..nrows {
            let o = d.owner(row);
            assert!(d.rows_of(o).contains(row));
        }
    });
}

#[test]
fn transfers_conserve_rows() {
    check("transfers_conserve_rows", |rng| {
        let nrows = rng.range_usize(2, 300);
        let w1 = rng.vec_in(2, 6, |r| r.range_f64(0.1, 5.0));
        let w2 = rng.vec_in(2, 6, |r| r.range_f64(0.1, 5.0));
        let old = Distribution::block_from_weights(nrows, &w1, 0);
        let new = Distribution::block_from_weights(nrows, &w2, 0);
        let t = old.transfers_to(&new);
        let mut all = RowSet::new();
        let mut total = 0usize;
        for (_, _, rs) in &t {
            total += rs.len();
            all = all.union(rs);
        }
        assert_eq!(total, nrows, "every row lands exactly once");
        assert_eq!(all, RowSet::from_range(0..nrows));
    });
}

// ---------------- balancers ---------------------------------------

#[test]
fn balancers_conserve_work() {
    check("balancers_conserve_work", |rng| {
        let nrows = rng.range_usize(4, 400);
        let ncps = rng.vec_in(2, 8, |r| r.range_u32(0, 4));
        let recvs = rng.range_f64(0.0, 6.0);
        let loads: Vec<NodeLoad> = ncps
            .iter()
            .map(|&n| NodeLoad { ncp: n, speed: 1.0 })
            .collect();
        if nrows < loads.len() {
            return;
        }
        let w: Vec<f64> = (0..nrows).map(|i| 0.5 + (i % 5) as f64).collect();
        let comm = CommModel {
            blocking_recvs_per_cycle: recvs,
            quantum: 0.01,
            wait_factor: 0.05,
        };
        for d in [
            relative_power(&w, &loads, 0),
            successive_balance(&w, &loads, &comm, 0),
            successive_balance_with_floor(&w, &loads, &comm, 0, 0.0),
        ] {
            assert_eq!(d.counts().iter().sum::<usize>(), nrows);
        }
    });
}

#[test]
fn successive_balance_never_gives_loaded_more_than_unloaded() {
    check("successive_balance_loaded_vs_unloaded", |rng| {
        let nrows = rng.range_usize(50, 400);
        let ncp = rng.range_u32(1, 4);
        let loads = [
            NodeLoad { ncp, speed: 1.0 },
            NodeLoad::unloaded(1.0),
            NodeLoad::unloaded(1.0),
        ];
        let w = vec![1.0; nrows];
        let comm = CommModel {
            blocking_recvs_per_cycle: 2.0,
            quantum: 0.01,
            wait_factor: 0.05,
        };
        let c = successive_balance(&w, &loads, &comm, 0).counts();
        assert!(c[0] <= c[1] + 1, "loaded {} vs unloaded {}", c[0], c[1]);
        assert!(c[0] <= c[2] + 1);
    });
}

#[test]
fn partition_respects_min_rows() {
    check("partition_respects_min_rows", |rng| {
        let nrows = rng.range_usize(20, 300);
        let shares = rng.vec_in(2, 6, |r| r.range_f64(0.0, 5.0));
        let min_rows = rng.range_usize(0, 4);
        if shares.iter().sum::<f64>() <= 0.0 || min_rows * shares.len() > nrows {
            return;
        }
        let w = vec![1.0; nrows];
        let counts = partition_rows(&w, &shares, min_rows);
        assert_eq!(counts.iter().sum::<usize>(), nrows);
        for c in counts {
            assert!(c >= min_rows);
        }
    });
}

// ---------------- DRSDs -------------------------------------------

#[test]
fn drsd_eval_stays_in_bounds() {
    check("drsd_eval_stays_in_bounds", |rng| {
        let lo = rng.range_usize(0, 100);
        let span = rng.range_usize(0, 100);
        let halo = rng.range_i64(0, 5);
        let nrows = rng.range_usize(1, 250);
        let hi = lo + span;
        let d = Drsd::with_halo(halo);
        let s = d.eval(lo, hi, nrows);
        if let (Some(first), Some(last)) = (s.first(), s.last()) {
            assert!(last < nrows);
            assert!(first <= last);
        }
    });
}

#[test]
fn drsd_halo_superset_of_iter_space() {
    check("drsd_halo_superset_of_iter_space", |rng| {
        let lo = rng.range_usize(0, 50);
        let span = rng.range_usize(0, 50);
        let nrows = rng.range_usize(100, 200);
        let hi = lo + span;
        let base = Drsd::iter_space().eval(lo, hi, nrows);
        let widened = Drsd::with_halo(2).eval(lo, hi, nrows);
        assert_eq!(base.diff(&widened).len(), 0);
    });
}

// ---------------- wire formats -------------------------------------

#[test]
fn dense_pack_unpack_round_trip() {
    check("dense_pack_unpack_round_trip", |rng| {
        use dynmpi::{DenseMatrix, RedistArray};
        let rows = gen_rowset(rng).clamp(200);
        let row_len = rng.range_usize(1, 16);
        let mut a = DenseMatrix::<f64>::new(200, row_len);
        a.fill_rows(&rows, |i, j| (i * 31 + j) as f64);
        let bytes = a.pack_rows(&rows, false);
        let mut b = DenseMatrix::<f64>::new(200, row_len);
        b.unpack_rows(&rows, &bytes);
        for i in rows.iter() {
            assert_eq!(a.row(i), b.row(i));
        }
    });
}

#[test]
fn sparse_pack_unpack_round_trip() {
    check("sparse_pack_unpack_round_trip", |rng| {
        use dynmpi::{RedistArray, SparseMatrix};
        let entries = rng.vec_in(0, 80, |r| {
            (
                r.range_usize(0, 40),
                r.range_u32(0, 60),
                r.range_f64(-10.0, 10.0),
            )
        });
        let mut a = SparseMatrix::<f64>::new(40, 60);
        for &(i, c, v) in &entries {
            a.set(i, c, v);
        }
        let rows = a.present_rows();
        let bytes = a.pack_rows(&rows, false);
        let mut b = SparseMatrix::<f64>::new(40, 60);
        b.unpack_rows(&rows, &bytes);
        assert_eq!(a.nnz(), b.nnz());
        for (i, c, v) in a.iter() {
            assert_eq!(b.row(i).get(c), Some(v));
        }
    });
}
