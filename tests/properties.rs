//! Property-based tests on the core invariants (proptest).

use dynmpi::{
    partition_rows, relative_power, successive_balance, successive_balance_with_floor, CommModel,
    Distribution, Drsd, NodeLoad, RowSet,
};
use proptest::prelude::*;

fn rowset_strategy() -> impl Strategy<Value = RowSet> {
    prop::collection::vec((0usize..200, 1usize..20), 0..12)
        .prop_map(|pairs| RowSet::from_ranges(pairs.into_iter().map(|(s, l)| s..s + l)))
}

proptest! {
    // ---------------- RowSet algebra ----------------------------------

    #[test]
    fn rowset_union_contains_both(a in rowset_strategy(), b in rowset_strategy()) {
        let u = a.union(&b);
        for r in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(r));
        }
        prop_assert_eq!(u.len(), a.iter().chain(b.iter()).collect::<std::collections::BTreeSet<_>>().len());
    }

    #[test]
    fn rowset_diff_intersect_partition(a in rowset_strategy(), b in rowset_strategy()) {
        // a = (a \ b) ⊎ (a ∩ b), disjointly.
        let d = a.diff(&b);
        let i = a.intersect(&b);
        prop_assert_eq!(d.len() + i.len(), a.len());
        prop_assert!(d.intersect(&i).is_empty());
        prop_assert_eq!(d.union(&i), a.clone());
        // Nothing in the difference is in b.
        for r in d.iter() {
            prop_assert!(!b.contains(r));
        }
    }

    #[test]
    fn rowset_ranges_sorted_disjoint(a in rowset_strategy()) {
        let rs = a.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].end < w[1].start, "ranges must be disjoint, non-adjacent");
        }
    }

    // ---------------- distributions -----------------------------------

    #[test]
    fn block_weights_partition_rows(
        nrows in 1usize..500,
        weights in prop::collection::vec(0.0f64..10.0, 1..9),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Distribution::block_from_weights(nrows, &weights, 0);
        prop_assert_eq!(d.counts().iter().sum::<usize>(), nrows);
        // Every row has exactly one owner, consistent with rows_of.
        for row in 0..nrows {
            let o = d.owner(row);
            prop_assert!(d.rows_of(o).contains(row));
        }
    }

    #[test]
    fn transfers_conserve_rows(
        nrows in 2usize..300,
        w1 in prop::collection::vec(0.1f64..5.0, 2..6),
        w2 in prop::collection::vec(0.1f64..5.0, 2..6),
    ) {
        let old = Distribution::block_from_weights(nrows, &w1, 0);
        let new = Distribution::block_from_weights(nrows, &w2, 0);
        let t = old.transfers_to(&new);
        let mut all = RowSet::new();
        let mut total = 0usize;
        for (_, _, rs) in &t {
            total += rs.len();
            all = all.union(rs);
        }
        prop_assert_eq!(total, nrows, "every row lands exactly once");
        prop_assert_eq!(all, RowSet::from_range(0..nrows));
    }

    // ---------------- balancers ---------------------------------------

    #[test]
    fn balancers_conserve_work(
        nrows in 4usize..400,
        ncps in prop::collection::vec(0u32..4, 2..8),
        recvs in 0.0f64..6.0,
    ) {
        let loads: Vec<NodeLoad> = ncps.iter().map(|&n| NodeLoad { ncp: n, speed: 1.0 }).collect();
        prop_assume!(nrows >= loads.len());
        let w: Vec<f64> = (0..nrows).map(|i| 0.5 + (i % 5) as f64).collect();
        let comm = CommModel { blocking_recvs_per_cycle: recvs, quantum: 0.01, wait_factor: 0.05 };
        for d in [
            relative_power(&w, &loads, 0),
            successive_balance(&w, &loads, &comm, 0),
            successive_balance_with_floor(&w, &loads, &comm, 0, 0.0),
        ] {
            prop_assert_eq!(d.counts().iter().sum::<usize>(), nrows);
        }
    }

    #[test]
    fn successive_balance_never_gives_loaded_more_than_unloaded(
        nrows in 50usize..400,
        ncp in 1u32..4,
    ) {
        let loads = [
            NodeLoad { ncp, speed: 1.0 },
            NodeLoad::unloaded(1.0),
            NodeLoad::unloaded(1.0),
        ];
        let w = vec![1.0; nrows];
        let comm = CommModel { blocking_recvs_per_cycle: 2.0, quantum: 0.01, wait_factor: 0.05 };
        let c = successive_balance(&w, &loads, &comm, 0).counts();
        prop_assert!(c[0] <= c[1] + 1, "loaded {} vs unloaded {}", c[0], c[1]);
        prop_assert!(c[0] <= c[2] + 1);
    }

    #[test]
    fn partition_respects_min_rows(
        nrows in 20usize..300,
        shares in prop::collection::vec(0.0f64..5.0, 2..6),
        min_rows in 0usize..4,
    ) {
        prop_assume!(shares.iter().sum::<f64>() > 0.0);
        prop_assume!(min_rows * shares.len() <= nrows);
        let w = vec![1.0; nrows];
        let counts = partition_rows(&w, &shares, min_rows);
        prop_assert_eq!(counts.iter().sum::<usize>(), nrows);
        for c in counts {
            prop_assert!(c >= min_rows);
        }
    }

    // ---------------- DRSDs -------------------------------------------

    #[test]
    fn drsd_eval_stays_in_bounds(
        lo in 0usize..100,
        span in 0usize..100,
        halo in 0i64..5,
        nrows in 1usize..250,
    ) {
        let hi = lo + span;
        let d = Drsd::with_halo(halo);
        let s = d.eval(lo, hi, nrows);
        if let (Some(first), Some(last)) = (s.first(), s.last()) {
            prop_assert!(last < nrows);
            prop_assert!(first <= last);
        }
    }

    #[test]
    fn drsd_halo_superset_of_iter_space(
        lo in 0usize..50,
        span in 0usize..50,
        nrows in 100usize..200,
    ) {
        let hi = lo + span;
        let base = Drsd::iter_space().eval(lo, hi, nrows);
        let widened = Drsd::with_halo(2).eval(lo, hi, nrows);
        prop_assert_eq!(base.diff(&widened).len(), 0);
    }

    // ---------------- wire formats -------------------------------------

    #[test]
    fn dense_pack_unpack_round_trip(
        rows in rowset_strategy(),
        row_len in 1usize..16,
    ) {
        use dynmpi::{DenseMatrix, RedistArray};
        let rows = rows.clamp(200);
        let mut a = DenseMatrix::<f64>::new(200, row_len);
        a.fill_rows(&rows, |i, j| (i * 31 + j) as f64);
        let bytes = a.pack_rows(&rows, false);
        let mut b = DenseMatrix::<f64>::new(200, row_len);
        b.unpack_rows(&rows, &bytes);
        for i in rows.iter() {
            prop_assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    fn sparse_pack_unpack_round_trip(
        entries in prop::collection::vec((0usize..40, 0u32..60, -10.0f64..10.0), 0..80),
    ) {
        use dynmpi::{RedistArray, SparseMatrix};
        let mut a = SparseMatrix::<f64>::new(40, 60);
        for &(i, c, v) in &entries {
            a.set(i, c, v);
        }
        let rows = a.present_rows();
        let bytes = a.pack_rows(&rows, false);
        let mut b = SparseMatrix::<f64>::new(40, 60);
        b.unpack_rows(&rows, &bytes);
        prop_assert_eq!(a.nnz(), b.nnz());
        for (i, c, v) in a.iter() {
            prop_assert_eq!(b.row(i).get(c), Some(v));
        }
    }
}
