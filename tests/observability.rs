//! End-to-end observability tests: attach a `Recorder` to a full adaptive
//! run on the virtual cluster, export the Chrome trace, parse it back, and
//! check the structural guarantees the exporters promise — plus exact
//! reconciliation of the metrics registry against the simulator's own
//! traffic accounting.

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_obs::{parse_chrome_trace, ParsedEvent, Recorder};
use dynmpi_sim::{LoadScript, NodeSpec};

const NODES: usize = 4;

/// An adaptive Jacobi run that provokes the whole pipeline: external load
/// appears at cycle 10 on node 0, so detection, grace measurement,
/// balancing and redistribution all fire.
fn recorded_run() -> (Recorder, dynmpi_apps::harness::SimRunResult) {
    let mut p = JacobiParams::small(128, 60);
    p.exercise_kernel = false;
    let exp = Experiment::new(AppSpec::Jacobi(p), NODES)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_cfg(DynMpiConfig::default())
        .with_script(LoadScript::dedicated().at_cycle(0, 10, 2));
    let rec = Recorder::new();
    let result = run_sim_with(&exp, Some(rec.clone()));
    (rec, result)
}

/// Per-rank spans must be properly nested (any two overlap only by full
/// containment) and instants must carry monotone-safe timestamps.
fn assert_rank_spans_nest(rank: u64, spans: &[&ParsedEvent]) {
    // Sort by start time; equal starts put the longer (outer) span first.
    let mut sorted: Vec<&ParsedEvent> = spans.to_vec();
    sorted.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));
    let mut stack: Vec<u64> = Vec::new(); // open span end times
    for s in sorted {
        let end = s.ts_ns.checked_add(s.dur_ns).expect("span end overflows");
        while let Some(&top) = stack.last() {
            if top <= s.ts_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top) = stack.last() {
            assert!(
                end <= top,
                "rank {rank}: span {}/{} [{}, {}) crosses its parent's end {}",
                s.cat,
                s.name,
                s.ts_ns,
                end,
                top
            );
        }
        stack.push(end);
    }
}

#[test]
fn chrome_trace_round_trips_with_all_ranks_and_categories() {
    let (rec, _result) = recorded_run();

    let dir = std::env::temp_dir().join("dynmpi_obs_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    rec.write_chrome_trace(&path).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = parse_chrome_trace(&text).expect("exported trace must parse back");
    assert!(!parsed.is_empty());

    // Every rank contributed events.
    for rank in 0..NODES as u64 {
        assert!(
            parsed.iter().any(|e| e.tid == rank),
            "no events from rank {rank}"
        );
    }

    // The taxonomy's layers are all present: scheduler quanta, collective
    // communication, the runtime pipeline, and redistribution.
    for cat in ["sched", "comm", "runtime", "redist"] {
        assert!(
            parsed.iter().any(|e| e.cat == cat),
            "no `{cat}` events in trace"
        );
    }
    // ... including the named pipeline stages.
    for name in ["end_cycle", "finish_grace", "balance", "redistribute"] {
        assert!(
            parsed.iter().any(|e| e.phase == 'X' && e.name == name),
            "no `{name}` span in trace"
        );
    }

    // Spans nest properly per rank, and all timestamps are in-range for
    // the run (virtual time starts at 0).
    for rank in 0..NODES as u64 {
        let spans: Vec<&ParsedEvent> = parsed
            .iter()
            .filter(|e| e.tid == rank && e.phase == 'X')
            .collect();
        assert!(!spans.is_empty(), "rank {rank} has no spans");
        assert_rank_spans_nest(rank, &spans);
    }
}

#[test]
fn merged_metrics_reconcile_exactly_with_sim_report() {
    let (rec, result) = recorded_run();
    let merged = rec.merged_metrics();

    // The counters are recorded at the exact simulator accounting sites,
    // so the match with the SimReport totals is integer-exact.
    assert_eq!(
        merged.counter("sim.msgs_sent"),
        result.net_messages,
        "message counter does not reconcile with SimReport"
    );
    assert_eq!(
        merged.counter("sim.bytes_sent"),
        result.net_bytes,
        "byte counter does not reconcile with SimReport"
    );
    // Receives can trail sends (messages still in a mailbox when the run
    // finishes) but can never exceed them.
    assert!(merged.counter("sim.msgs_recvd") <= merged.counter("sim.msgs_sent"));
    assert!(merged.counter("sim.bytes_recvd") <= merged.counter("sim.bytes_sent"));
    assert!(merged.counter("sim.msgs_recvd") > 0);

    // Collectives were traced and the byte histograms saw the traffic.
    assert!(merged.counter("comm.coll.allreduce") > 0);
    let h = merged
        .hists
        .get("comm.msg_bytes_sent")
        .expect("sent-bytes histogram missing");
    assert!(h.count > 0);
    assert_eq!(h.counts.iter().sum::<u64>(), h.count);

    // Per-rank snapshots merge to the same totals whatever the order.
    let mut fwd = dynmpi_obs::Snapshot::default();
    let mut rev = dynmpi_obs::Snapshot::default();
    let snaps = rec.snapshots();
    assert_eq!(snaps.len(), NODES);
    for (_, s) in &snaps {
        fwd.merge(s);
    }
    for (_, s) in snaps.iter().rev() {
        rev.merge(s);
    }
    assert_eq!(fwd.counter("sim.msgs_sent"), rev.counter("sim.msgs_sent"));
    assert_eq!(
        fwd.counter("sim.bytes_sent"),
        merged.counter("sim.bytes_sent")
    );
}
