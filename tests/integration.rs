//! Cross-crate integration tests: full applications on the virtual
//! cluster, exercising detection → grace → redistribution → removal →
//! rejoin end to end, and proving adaptation never changes answers.

use dynmpi::{BalancerKind, DropPolicy, DynMpiConfig};
use dynmpi_apps::cg::CgParams;
use dynmpi_apps::harness::{run_sim, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_apps::particle::ParticleParams;
use dynmpi_apps::sor::SorParams;
use dynmpi_sim::{LoadScript, NodeSpec};

fn slow() -> NodeSpec {
    NodeSpec::with_speed(2e6)
}

#[test]
fn full_pipeline_detect_grace_redistribute() {
    let p = JacobiParams {
        n: 128,
        iters: 60,
        exercise_kernel: true,
        rebalance_at: None,
    };
    let script = LoadScript::dedicated().at_cycle(2, 8, 2);
    let r = run_sim(
        &Experiment::new(AppSpec::Jacobi(p), 4)
            .with_node_spec(slow())
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Never,
                ..Default::default()
            })
            .with_script(script),
    );
    let kinds: Vec<&str> = r.events().iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"load-change"), "{kinds:?}");
    assert!(kinds.contains(&"grace-complete"));
    assert!(kinds.contains(&"redistributed"));
    // The loaded node ends with fewer rows than the others.
    let rows: Vec<usize> = r.per_rank.iter().map(|x| x.final_rows).collect();
    assert!(rows[2] < rows[0], "{rows:?}");
    assert_eq!(rows.iter().sum::<usize>(), 126); // phase covers 1..127
}

#[test]
fn adaptation_never_changes_answers_across_configs() {
    let p = JacobiParams {
        n: 96,
        iters: 40,
        exercise_kernel: true,
        rebalance_at: None,
    };
    let script = LoadScript::dedicated().at_cycle(1, 6, 2);
    let mut checksums = Vec::new();
    for cfg in [
        DynMpiConfig::no_adapt(),
        DynMpiConfig {
            drop_policy: DropPolicy::Never,
            ..Default::default()
        },
        DynMpiConfig {
            drop_policy: DropPolicy::Always,
            grace_period: 2,
            ..Default::default()
        },
        DynMpiConfig {
            balancer: BalancerKind::RelativePower,
            drop_policy: DropPolicy::Logical,
            min_rows_logical: 2,
            ..Default::default()
        },
    ] {
        let r = run_sim(
            &Experiment::new(AppSpec::Jacobi(p.clone()), 3)
                .with_node_spec(slow())
                .with_cfg(cfg)
                .with_script(script.clone()),
        );
        checksums.push(r.checksum().unwrap());
    }
    for c in &checksums[1..] {
        assert!(
            (c - checksums[0]).abs() < 1e-9 * checksums[0].abs().max(1.0),
            "checksums diverged: {checksums:?}"
        );
    }
}

#[test]
fn simulation_runs_are_bit_deterministic() {
    let mk = || {
        let p = SorParams {
            n: 96,
            iters: 30,
            omega: 1.5,
            exercise_kernel: true,
        };
        let script = LoadScript::dedicated().at_cycle(3, 5, 1);
        let r = run_sim(
            &Experiment::new(AppSpec::Sor(p), 4)
                .with_node_spec(slow())
                .with_script(script),
        );
        (
            r.makespan,
            r.checksum(),
            r.net_messages,
            r.per_rank
                .iter()
                .map(|x| x.cycle_times.clone())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(mk(), mk());
}

#[test]
fn forced_drop_then_completion() {
    // Very slow nodes so the run spans several virtual seconds — the
    // 1 Hz dmpi_ps monitor needs whole seconds to observe the load.
    let p = SorParams {
        n: 64,
        iters: 50,
        omega: 1.5,
        exercise_kernel: true,
    };
    let script = LoadScript::dedicated().at_cycle(3, 5, 3);
    let crawl = NodeSpec::with_speed(2e5);
    let r = run_sim(
        &Experiment::new(AppSpec::Sor(p.clone()), 4)
            .with_node_spec(crawl)
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Always,
                grace_period: 2,
                post_redist_period: 3,
                ..Default::default()
            })
            .with_script(script.clone()),
    );
    assert!(r.events().iter().any(|e| e.kind() == "nodes-dropped"));
    assert!(!r.per_rank[3].participating);
    assert_eq!(r.per_rank[3].final_rows, 0);
    // Survivors own the whole interior and the answer matches no-adapt.
    let total: usize = r.per_rank.iter().map(|x| x.final_rows).sum();
    assert_eq!(total, 62);
    let base = run_sim(
        &Experiment::new(AppSpec::Sor(p), 4)
            .with_node_spec(crawl)
            .with_cfg(DynMpiConfig::no_adapt())
            .with_script(script),
    );
    let (a, b) = (base.checksum().unwrap(), r.checksum().unwrap());
    assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
}

#[test]
fn drop_and_rejoin_lifecycle() {
    let p = SorParams {
        n: 64,
        iters: 110,
        omega: 1.5,
        exercise_kernel: true,
    };
    let script = LoadScript::dedicated().at_cycle(3, 5, 3).at_cycle(3, 60, 0);
    let r = run_sim(
        &Experiment::new(AppSpec::Sor(p), 4)
            .with_node_spec(NodeSpec::with_speed(2e5))
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Always,
                allow_rejoin: true,
                rejoin_after_cycles: 3,
                grace_period: 2,
                post_redist_period: 3,
                ..Default::default()
            })
            .with_script(script),
    );
    assert!(r.events().iter().any(|e| e.kind() == "nodes-dropped"));
    assert!(
        r.per_rank[3].participating,
        "node 3 must be re-admitted once its load clears"
    );
    assert!(r.per_rank[3].final_rows > 0);
}

#[test]
fn particle_mass_conserved_across_drop() {
    let mut p = ParticleParams::small(32, 16, 60);
    p.hot_rows = Some(0..8);
    let expect = {
        let init = dynmpi_apps::gen::particle_counts(32, 16, p.base, p.hot, 0..8, p.seed);
        init.iter().flatten().sum::<f64>()
    };
    let script = LoadScript::dedicated().at_cycle(2, 5, 3);
    let r = run_sim(
        &Experiment::new(AppSpec::Particle(p), 4)
            .with_node_spec(slow())
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Always,
                grace_period: 2,
                post_redist_period: 3,
                ..Default::default()
            })
            .with_script(script),
    );
    let mass = r.checksum().unwrap();
    assert!(
        (mass - expect).abs() < 1e-9 * expect,
        "mass {mass} vs {expect} (redistribution must not lose particles)"
    );
}

#[test]
fn cg_converges_identically_under_load() {
    let p = CgParams::small(80, 25);
    let script = LoadScript::dedicated().at_cycle(1, 5, 2);
    let clean = run_sim(
        &Experiment::new(AppSpec::Cg(p.clone()), 3)
            .with_node_spec(slow())
            .with_cfg(DynMpiConfig::no_adapt()),
    );
    let adapted = run_sim(
        &Experiment::new(AppSpec::Cg(p), 3)
            .with_node_spec(slow())
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Never,
                ..Default::default()
            })
            .with_script(script),
    );
    let (a, b) = (clean.checksum().unwrap(), adapted.checksum().unwrap());
    assert!(a < 1e-8, "CG must converge: {a}");
    assert!((a - b).abs() <= 1e-12 + 1e-6 * a.abs(), "{a} vs {b}");
}

#[test]
fn monitoring_overhead_is_modest() {
    // The pipelined control plane must cost little on an unloaded run.
    // Paper-like per-cycle compute (tens of ms) at a realistic per-message
    // CPU cost relative to node speed.
    let p = JacobiParams {
        n: 512,
        iters: 40,
        exercise_kernel: false,
        rebalance_at: None,
    };
    let spec = NodeSpec::with_speed(2e7);
    let off = run_sim(
        &Experiment::new(AppSpec::Jacobi(p.clone()), 4)
            .with_node_spec(spec)
            .with_cfg(DynMpiConfig::no_adapt()),
    );
    let on = run_sim(
        &Experiment::new(AppSpec::Jacobi(p), 4)
            .with_node_spec(spec)
            .with_cfg(DynMpiConfig::default()),
    );
    let overhead = on.makespan / off.makespan - 1.0;
    assert!(
        overhead < 0.08,
        "monitoring overhead {:.1}%",
        overhead * 100.0
    );
}

#[test]
fn logical_drop_keeps_ranks_static() {
    let p = SorParams {
        n: 64,
        iters: 40,
        omega: 1.5,
        exercise_kernel: true,
    };
    let script = LoadScript::dedicated().at_cycle(3, 5, 3);
    let r = run_sim(
        &Experiment::new(AppSpec::Sor(p), 4)
            .with_node_spec(slow())
            .with_cfg(DynMpiConfig {
                drop_policy: DropPolicy::Logical,
                min_rows_logical: 2,
                grace_period: 2,
                ..Default::default()
            })
            .with_script(script),
    );
    assert!(r.per_rank.iter().all(|x| x.participating));
    assert!(
        r.per_rank[3].final_rows >= 1,
        "{:?}",
        r.per_rank[3].final_rows
    );
}
