//! Profiler properties and end-to-end attribution checks.
//!
//! Three property families on arbitrary traced programs:
//!   (a) the critical path never exceeds the makespan and never undercuts
//!       the busiest rank,
//!   (b) every rank's buckets sum exactly to its makespan (the attribution
//!       is exhaustive and exclusive — u64 arithmetic, no rounding slack),
//!   (c) span attributes round-trip through both the JSONL and Chrome
//!       exporters and their parsers.
//! Plus an integration test driving the full adaptive pipeline and
//! checking the profile a user would get from `--profile-out`.

use dynmpi::DynMpiConfig;
use dynmpi_apps::harness::{run_sim_with, AppSpec, Experiment};
use dynmpi_apps::jacobi::JacobiParams;
use dynmpi_obs::export::{chrome_trace, jsonl};
use dynmpi_obs::{
    analyze, parse_chrome_trace, parse_jsonl, Json, ProfileReport, Recorder, SegKind, TraceEvent,
};
use dynmpi_sim::{Cluster, LoadScript, NodeSpec, SimCtx, SimTime};
use dynmpi_testkit::{check_n, Rng};

/// Invariants every profile must satisfy, whatever program produced it.
fn assert_profile_invariants(report: &ProfileReport) {
    // (b) exhaustive, exclusive attribution: exact sum per rank.
    for rank in &report.ranks {
        assert_eq!(
            rank.buckets.total(),
            rank.makespan_ns,
            "rank {} buckets do not sum to its makespan",
            rank.rank
        );
        assert!(rank.busy_ns <= rank.makespan_ns);
        assert!(rank.makespan_ns <= report.makespan_ns);
    }

    // (a) critical path bounded by the makespan, at least the busiest rank.
    let cp = report.critical_path_ns();
    assert!(
        cp <= report.makespan_ns,
        "critical path {cp} exceeds makespan {}",
        report.makespan_ns
    );
    let max_busy = report.ranks.iter().map(|r| r.busy_ns).max().unwrap_or(0);
    assert!(
        cp >= max_busy,
        "critical path {cp} undercuts busiest rank {max_busy}"
    );

    // Stronger structural form of (a): the segments tile [0, makespan]
    // back-to-back with no gaps or overlaps.
    if !report.critical_path.is_empty() {
        let mut cursor = 0u64;
        for seg in &report.critical_path {
            assert_eq!(seg.start_ns, cursor, "gap/overlap in critical path");
            assert!(seg.end_ns >= seg.start_ns);
            cursor = seg.end_ns;
        }
        assert_eq!(cursor, report.makespan_ns, "critical path stops short");
    }
}

/// Records a deterministic ring program on a random loaded cluster. All
/// instrumentation args on such a trace are unsigned integers, so both
/// exporters must round-trip them exactly.
fn random_ring_trace(rng: &mut Rng) -> Vec<TraceEvent> {
    let n = rng.range_usize(2, 5);
    let speeds: Vec<f64> = (0..n).map(|_| rng.range_f64(3e5, 3e6)).collect();
    let mut script = LoadScript::dedicated();
    for node in 0..n {
        for _ in 0..rng.range_u64(0, 3) {
            script = script.at_time(
                node,
                SimTime::from_micros(rng.range_u64(1, 200_000)),
                rng.range_u32(0, 4),
            );
        }
    }
    let works: Vec<f64> = (0..n).map(|_| rng.range_f64(1e4, 2e5)).collect();
    let rounds = rng.range_u64(1, 5);
    let rec = Recorder::new();
    let works = &works;
    Cluster::heterogeneous(speeds.iter().map(|&s| NodeSpec::with_speed(s)).collect())
        .with_script(script)
        .with_recorder(rec.clone())
        .run_spmd(move |ctx: &SimCtx| {
            let r = ctx.rank();
            for _ in 0..rounds {
                ctx.advance(works[r]);
                ctx.send((r + 1) % n, 7, vec![r as u8; 128]);
                let _ = ctx.recv((r + n - 1) % n, 7);
            }
        });
    rec.events()
}

#[test]
fn attribution_and_critical_path_invariants_hold_on_random_programs() {
    check_n("profiler_invariants_random", 12, |rng: &mut Rng| {
        let events = random_ring_trace(rng);
        assert!(!events.is_empty());
        let report = analyze(&events);
        assert!(report.makespan_ns > 0);
        assert_eq!(report.ranks.len(), {
            let mut ranks: Vec<usize> = events.iter().map(|e| e.rank()).collect();
            ranks.sort_unstable();
            ranks.dedup();
            ranks.len()
        });
        assert_profile_invariants(&report);
    });
}

#[test]
fn span_attributes_round_trip_through_jsonl_and_chrome() {
    check_n("profiler_roundtrip_random", 8, |rng: &mut Rng| {
        let events = random_ring_trace(rng);

        // (c) JSONL: full event-level fidelity, so the analyzer sees the
        // identical stream whether it runs in-process or on a trace file.
        let parsed = parse_jsonl(&jsonl(&events)).expect("exported JSONL must parse");
        assert_eq!(parsed, events, "JSONL round-trip changed the events");
        assert_eq!(analyze(&parsed), analyze(&events));

        // (c) Chrome: args survive with order and values intact.
        let parsed = parse_chrome_trace(&chrome_trace(&events)).expect("chrome must parse");
        assert_eq!(parsed.len(), events.len());
        for (p, e) in parsed.iter().zip(&events) {
            assert_eq!(p.ts_ns, e.ts_ns());
            assert_eq!(p.tid, e.rank() as u64);
            assert_eq!(p.name, e.name());
            let (TraceEvent::Complete { args, .. } | TraceEvent::Instant { args, .. }) = e;
            assert_eq!(&p.args, args, "chrome round-trip changed span args");
        }
    });
}

#[test]
fn adaptive_run_profile_attributes_the_full_pipeline() {
    // The observability.rs scenario: external load at cycle 10 provokes
    // detection, grace measurement, balancing, and redistribution.
    let mut p = JacobiParams::small(128, 60);
    p.exercise_kernel = false;
    let exp = Experiment::new(AppSpec::Jacobi(p), 4)
        .with_node_spec(NodeSpec::with_speed(1e6))
        .with_cfg(DynMpiConfig::default())
        .with_script(LoadScript::dedicated().at_cycle(0, 10, 2));
    let rec = Recorder::new();
    run_sim_with(&exp, Some(rec.clone()));

    let report = rec.profile();
    assert_profile_invariants(&report);

    // Acceptance bar: at least 95 % of every rank's makespan lands in a
    // named bucket (here the attribution is in fact exact, so 100 %).
    assert!(
        report.min_coverage_pct() >= 95.0,
        "coverage {:.2}% below bar",
        report.min_coverage_pct()
    );

    // The pipeline's cost shows up in the right buckets on every rank.
    for rank in &report.ranks {
        assert!(
            rank.buckets.runtime_ns > 0,
            "rank {} saw no runtime overhead",
            rank.rank
        );
    }
    assert!(report.ranks.iter().any(|r| r.buckets.redist_ns > 0));
    assert!(report.ranks.iter().any(|r| r.buckets.interference_ns > 0));

    // The critical path crosses ranks: at least one transfer segment.
    assert!(report
        .critical_path
        .iter()
        .any(|s| matches!(s.kind, SegKind::Transfer { src, dst, .. } if src != dst)));

    // At least one redistribution cycle was audited, with real movement
    // and a before/after imbalance pair.
    assert!(!report.cycles.is_empty(), "no adaptation-cycle audits");
    let audit = &report.cycles[0];
    assert!(audit.rows_moved > 0);
    assert!(audit.redist_seconds > 0.0);
    assert!(audit.imbalance_before.unwrap_or(0.0) >= 1.0);
    assert!(audit.imbalance_after.unwrap_or(0.0) >= 1.0);

    // The report a user writes with --profile-out parses back and carries
    // the documented schema.
    let json_text = report.to_json().to_string();
    let parsed = Json::parse(&json_text).expect("profile JSON must parse");
    for key in ["makespan_ns", "ranks", "critical_path", "cycles"] {
        assert!(parsed.get(key).is_some(), "profile JSON missing `{key}`");
    }
    assert_eq!(
        parsed.get("makespan_ns").and_then(Json::as_u64),
        Some(report.makespan_ns)
    );

    // Offline analysis of the written trace matches in-process analysis.
    let offline = parse_jsonl(&rec.jsonl()).expect("trace JSONL must parse");
    assert_eq!(analyze(&offline), report, "offline profile diverges");

    // And the human-readable rendering carries the headline numbers.
    let text = report.render_text();
    assert!(text.contains("makespan"));
    assert!(text.contains("critical path"));
    assert!(text.contains("redistribution audits"));
}
